// Package protocol is the transport-neutral wire model of the sweep
// job API: the JSON types that let sweeps, cells, and their fold
// states travel between processes — the tctp-sweep CLI, the
// long-lived tctp-server daemon, and any future remote worker — with
// none of the engine's Go-level machinery (closures, planners,
// collectors) attached.
//
// Three ideas anchor the model:
//
//   - A cell's identity is content-addressed. CellIdentity hashes
//     everything that determines one cell's computation and fold —
//     the parameter point, the full fleet/workload configurations,
//     the replication protocol, and the caller's config digest — but
//     deliberately NOT the sweep's name or the other cells of the
//     grid that enumerated it. Two overlapping sweeps therefore agree
//     on the keys of their shared cells, which is what makes the
//     sha256 key a cache key rather than just a checkpoint guard.
//
//   - A cell's result is its fold state. FoldState reuses the
//     checkpoint JSONL encoding (bit-exact Welford snapshots via
//     stats.AccumulatorState), so a cached, merged, or wire-shipped
//     cell restores the same bits an uninterrupted local run would
//     hold, and sink output downstream of any of them is
//     byte-identical.
//
//   - A sweep request is plain data. SweepRequest mirrors the
//     tctp-sweep axis flags one-for-one; internal/sweep/build turns
//     it into an executable Spec on whichever machine receives it.
package protocol

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"tctp/internal/stats"
)

// FoldState is the complete, bit-exact fold state of one cell: the
// seed-ordered replication frontier and every Welford accumulator's
// snapshot. It is the unit the checkpoint file persists per line, the
// cache stores per cell key, and Merge fuses across shards. Restoring
// it and folding the remaining replications (if any) reproduces an
// uninterrupted run bit for bit.
type FoldState struct {
	// Next is the number of replications folded so far (the next
	// replication index to fold).
	Next int `json:"next"`
	// Stopped marks a cell frozen below its replication ceiling by
	// adaptive early stopping; Reason says why.
	Stopped bool   `json:"stopped,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Scalars holds one snapshot per scalar metric, Vectors one
	// snapshot per position per vector metric.
	Scalars []stats.AccumulatorState   `json:"scalars"`
	Vectors [][]stats.AccumulatorState `json:"vectors,omitempty"`
}

// VectorID is the structural identity of one vector metric: its name
// and fixed capacity.
type VectorID struct {
	Name string `json:"name"`
	Len  int    `json:"len"`
}

// CellIdentity is the content-addressed identity of one sweep cell.
// The sweep engine fills the raw fields with the canonical JSON of
// its own types (Point, Fleet, Workload, Adaptive); this package only
// fixes the envelope and the hash, so the key derivation is visible
// at the wire level without importing the engine.
//
// Everything that can change the cell's numbers is in here:
// the parameter point (which already carries the algorithm, placement,
// partition, and workload/fleet names), the full fleet and workload
// configurations behind those names, the replication protocol (seeds,
// base seed, adaptive rule, in-cell fold sharding), the metric schema,
// and the caller's opaque config digest for hook-applied geometry.
// Everything that cannot is out: the sweep's name, the worker count,
// sink formats, and the rest of the grid.
type CellIdentity struct {
	Point    json.RawMessage `json:"point"`
	Fleet    json.RawMessage `json:"fleet,omitempty"`
	Workload json.RawMessage `json:"workload,omitempty"`
	// Failure is the cell's failure-injection configuration when the
	// Failures axis is enabled; omitted for static-world cells so
	// pre-failure cache keys stay stable. Scenario-declared event
	// schedules reach the identity through Digest instead.
	Failure  json.RawMessage `json:"failure,omitempty"`
	Seeds    int             `json:"seeds"`
	BaseSeed uint64          `json:"base_seed"`
	Adaptive json.RawMessage `json:"adaptive,omitempty"`
	// RepShards is the in-cell parallel-fold shard count when > 1. It
	// is part of the identity because a sharded fold's merge rounds
	// differently from the sequential fold — the states are not
	// interchangeable bit-for-bit.
	RepShards int        `json:"rep_shards,omitempty"`
	Metrics   []string   `json:"metrics"`
	Vectors   []VectorID `json:"vectors,omitempty"`
	Digest    string     `json:"digest,omitempty"`
}

// Key returns the cell's content-addressed cache key:
// "sha256:" + hex of the SHA-256 of the identity's canonical JSON.
func (c CellIdentity) Key() (string, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("protocol: cell identity: %w", err)
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// ValidKey reports whether key has the exact shape CellIdentity.Key
// produces. Stores use it to refuse malformed keys before they become
// file names.
func ValidKey(key string) bool {
	const prefix = "sha256:"
	if len(key) != len(prefix)+sha256.Size*2 || key[:len(prefix)] != prefix {
		return false
	}
	_, err := hex.DecodeString(key[len(prefix):])
	return err == nil
}

// CellRecord pairs a cell's local index within a partial with its
// fold state and (optionally) its content-addressed key.
type CellRecord struct {
	Cell int    `json:"cell"`
	Key  string `json:"key,omitempty"`
	FoldState
}

// Partial is the wire form of one job run's output: the shard
// coordinates sweep.Partial carries, with every finished cell's fold
// state — the same information a shard's checkpoint JSONL holds, as
// one JSON document.
type Partial struct {
	Sweep       string       `json:"sweep,omitempty"`
	Fingerprint string       `json:"fingerprint"`
	Shard       int          `json:"shard"`
	Shards      int          `json:"shards"`
	Offset      int          `json:"offset"`
	Cells       int          `json:"cells"`
	TotalCells  int          `json:"total_cells"`
	MaxReps     int          `json:"max_reps"`
	Records     []CellRecord `json:"records"`
}

// Source says how a cell's fold state was obtained from a cache-backed
// run: computed fresh, served from the cache, or joined onto another
// in-flight computation of the same cell (single-flight dedup).
type Source string

// The cell sources.
const (
	SourceComputed Source = "computed"
	SourceHit      Source = "hit"
	SourceJoined   Source = "joined"
)

// SweepRequest is a sweep spec as plain data: the axis and protocol
// flags of tctp-sweep, one JSON field per flag, with the same
// zero-value-means-default semantics. internal/sweep/build translates
// it into an executable sweep.Spec.
type SweepRequest struct {
	// Algorithms is the comma-separated algorithm axis (tctp-sweep
	// -alg); empty means the CLI default "btctp".
	Algorithms string `json:"algorithms,omitempty"`
	Targets    string `json:"targets,omitempty"`
	Mules      string `json:"mules,omitempty"`
	Speeds     string `json:"speeds,omitempty"`
	Fleets     string `json:"fleets,omitempty"`
	Placements string `json:"placements,omitempty"`
	// Workloads is the comma-separated workload axis (off, on,
	// bursts), parameterized by the Workload*/Burst* knobs below.
	Workloads        string  `json:"workloads,omitempty"`
	WorkloadGen      float64 `json:"workload_gen,omitempty"`
	WorkloadBuffer   int     `json:"workload_buffer,omitempty"`
	WorkloadDeadline float64 `json:"workload_deadline,omitempty"`
	BurstHot         int     `json:"burst_hot,omitempty"`
	BurstGap         float64 `json:"burst_gap,omitempty"`
	BurstSize        int     `json:"burst_size,omitempty"`
	// Preset names a built-in scenario preset; Scenario carries an
	// inline scenario document (the internal/scenario JSON model) —
	// the wire form of the CLI's -scenario file, so a server never
	// reads paths off its own disk. At most one of the two may be set.
	Preset   string          `json:"preset,omitempty"`
	Scenario json.RawMessage `json:"scenario,omitempty"`
	Seeds    int             `json:"seeds,omitempty"`
	BaseSeed uint64          `json:"base_seed,omitempty"`
	Horizon  float64         `json:"horizon,omitempty"`
	// Workers bounds each cell's replication pool; 0 = GOMAXPROCS of
	// the executing machine.
	Workers   int    `json:"workers,omitempty"`
	RepShards int    `json:"rep_shards,omitempty"`
	Adaptive  string `json:"adaptive,omitempty"`
	Partition string `json:"partition,omitempty"`
	// Failures is the comma-separated failure-injection axis
	// (tctp-sweep -failures), values in "rate[:handoff]" form;
	// Handoff is the default policy applied to values that do not
	// name their own (tctp-sweep -handoff).
	Failures string `json:"failures,omitempty"`
	Handoff  string `json:"handoff,omitempty"`
	// Quality adds the approximation-ratio metric columns
	// (ratio_tour, ratio_dcdt) computed against the internal/optimal
	// reference bounds (tctp-sweep -quality). The extra metric names
	// enter every cell's content-addressed identity, so quality cells
	// never collide with plain cells in a shared cache.
	Quality bool `json:"quality,omitempty"`
}

// Event is one line of a sweep's NDJSON event stream
// (GET /sweeps/{id}/events): a per-cell progress record, then a
// terminal "done" or "error".
type Event struct {
	// Type is "cell", "done", or "error".
	Type string `json:"type"`
	// Cell fields (Type == "cell").
	Cell   int    `json:"cell,omitempty"`
	Key    string `json:"key,omitempty"`
	Source Source `json:"source,omitempty"`
	// Result is the finished cell's aggregated result
	// (sweep.CellResult JSON), attached to "cell" events.
	Result json.RawMessage `json:"result,omitempty"`
	// Done fields (Type == "done").
	Cells int `json:"cells,omitempty"`
	Runs  int `json:"runs,omitempty"`
	// Error (Type == "error").
	Error string `json:"error,omitempty"`
}

// SweepStatus is the GET /sweeps/{id} document.
type SweepStatus struct {
	ID          string `json:"id"`
	State       string `json:"state"` // "running", "done", "failed"
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
	CellsDone   int    `json:"cells_done"`
	Hits        int    `json:"hits"`
	Computed    int    `json:"computed"`
	Joined      int    `json:"joined"`
	// Remote counts cells computed by remote workers (sources with the
	// "worker:" prefix) when the server runs a worker fleet.
	Remote int    `json:"remote,omitempty"`
	Error  string `json:"error,omitempty"`
}

// SubmitResponse is the POST /sweeps reply.
type SubmitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
	// Skipped counts cells excluded by the request's own constraints
	// (e.g. more mules than targets); they appear in the result's
	// footer exactly as in a local run.
	Skipped int `json:"skipped"`
}
