package sweep

// Quality metrics: per-cell approximation ratios of the planned
// solution against the reference-optimum layer (internal/optimal).
// Each patrol group is bounded independently — a partitioned plan's k
// short cycles are compared against the k optimal sub-tours, not
// against one global tour they could legitimately beat — and the
// per-group bounds compose into a whole-plan denominator. Ratios are
// ≥ 1.0 by construction for any sound planner; a value below 1.0
// means a bound (or the solver under it) is wrong, and the quality
// study's tests treat it as a failure.

import (
	"tctp/internal/geom"
	"tctp/internal/optimal"
)

// Quality returns the quality metric family: the tour-length and DCDT
// approximation ratios. Appending these to a Spec changes its cells'
// content-addressed identities (metric names are part of the key), so
// cached quality cells never collide with plain cells.
func Quality() []Metric {
	return []Metric{RatioTour(), RatioDCDT()}
}

// QualityMetricNames lists the metric names Quality adds, in order —
// the schema contract shared by the quality study, the CSV golden
// fixtures, and the benchgate quality gate.
func QualityMetricNames() []string { return []string{"ratio_tour", "ratio_dcdt"} }

// RatioTour is the tour-length approximation ratio: the plan's total
// walk length over the sum of per-group optimal-tour bounds (exact
// Held-Karp below optimal.ExactThreshold targets per group, hull/MST
// above). 0 for online algorithms (no plan) and for degenerate plans
// whose bound is 0. Weighted walks (W-TCTP revisiting VIPs) report
// their true extra travel: the denominator is the unweighted optimal
// tour, which the weighted walk must still dominate.
func RatioTour() Metric {
	return Metric{Name: "ratio_tour", Fn: func(e Env) float64 {
		if e.Result.Plan == nil {
			return 0
		}
		pts := e.Scenario.Points()
		num, den := 0.0, 0.0
		for _, g := range e.Result.Plan.Groups {
			num += g.Walk.Length(pts)
			den += groupTourBound(pts, g.Targets)
		}
		if den == 0 {
			return 0
		}
		return num / den
	}}
}

// RatioDCDT is the delay approximation ratio: the measured
// steady-state average DCDT over the induced lower bound. The bound
// mirrors the measurement's weighting — Recorder.AvgDCDTAfter is the
// mean over targets of each target's mean visiting interval, so the
// denominator is the mean over the plan's targets of each target's
// interval floor, optimal.IntervalBound(groupBound, weight,
// groupSpeedSum): a group whose fleet speeds sum to S cannot revisit
// a weight-w member more often than every bound/(w·S) seconds on
// average, whatever the mule phasing. 0 when there is no plan or no
// positive bound.
func RatioDCDT() Metric {
	return Metric{Name: "ratio_dcdt", Fn: func(e Env) float64 {
		if e.Result.Plan == nil {
			return 0
		}
		measured := e.Result.Recorder.AvgDCDTAfter(e.Warm())
		if measured == 0 {
			return 0
		}
		pts := e.Scenario.Points()
		weights := e.Scenario.Weights()
		sum, n := 0.0, 0
		for _, g := range e.Result.Plan.Groups {
			b := groupTourBound(pts, g.Targets)
			speedSum := 0.0
			for _, m := range g.Mules {
				speedSum += e.MuleSpeed(m)
			}
			for _, id := range g.Targets {
				w := 1
				if id < len(weights) {
					w = weights[id]
				}
				sum += optimal.IntervalBound(b, w, speedSum)
				n++
			}
		}
		if n == 0 || sum == 0 {
			return 0
		}
		return measured / (sum / float64(n))
	}}
}

// groupTourBound is the optimal-tour lower bound over one group's
// member points.
func groupTourBound(pts []geom.Point, ids []int) float64 {
	member := make([]geom.Point, len(ids))
	for i, id := range ids {
		member[i] = pts[id]
	}
	return optimal.TourBound(member).Value
}
