package sweep

import (
	"context"
	"testing"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
)

func qualitySpec(alg Variant) Spec {
	return Spec{
		Name:       "quality-test",
		Algorithms: []Variant{alg},
		Targets:    []int{12},
		Mules:      []int{4},
		Speeds:     []float64{2},
		Placements: []field.Placement{field.Uniform},
		Horizons:   []float64{60_000},
		Seeds:      3,
		Metrics:    Quality(),
	}
}

// Every planner's approximation ratios must be ≥ 1.0: the denominator
// is a sound lower bound (exact Held-Karp here, at 12 targets per
// group), so a ratio below 1 means the bound or the solver is wrong.
func TestQualityRatiosAtLeastOne(t *testing.T) {
	for _, v := range []Variant{
		Algo("B-TCTP", patrol.Planned(&core.BTCTP{})),
		Algo("W-TCTP", patrol.Planned(&core.WTCTP{})),
		Algo("CHB", patrol.Planned(&baseline.CHB{})),
		Algo("Sweep", patrol.Planned(&baseline.Sweep{})),
	} {
		res, err := Run(context.Background(), qualitySpec(v))
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		for _, c := range res.Cells {
			for _, name := range QualityMetricNames() {
				m := c.Metric(name)
				if m.Min < 1 {
					t.Errorf("%s: %s min %v < 1 (mean %v)", v.Name, name, m.Min, m.Mean)
				}
			}
		}
	}
}

// Online algorithms have no plan; the ratio columns must report 0,
// not fail.
func TestQualityRatiosOnlineZero(t *testing.T) {
	res, err := Run(context.Background(), qualitySpec(
		Algo("Random", patrol.Online(&baseline.Random{}))))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		for _, name := range QualityMetricNames() {
			if m := c.Metric(name); m.Mean != 0 {
				t.Errorf("online %s mean %v, want 0", name, m.Mean)
			}
		}
	}
}

// Partitioned plans are bounded per group: the ratio must stay ≥ 1
// even though k separate cycles are shorter than one global tour.
func TestQualityRatiosPartitioned(t *testing.T) {
	spec := qualitySpec(Algo("B-TCTP", patrol.Planned(&core.BTCTP{})))
	spec.Placements = []field.Placement{field.Clusters}
	spec.Partitions = []Partition{{Method: "kmeans", K: 2}}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		for _, name := range QualityMetricNames() {
			if m := c.Metric(name); m.Min < 1 {
				t.Errorf("partitioned %s min %v < 1", name, m.Min)
			}
		}
	}
}

// Adding the quality metrics must change every cell's content-
// addressed identity: metric names are part of the key, so quality
// cells and plain cells can never alias in a shared cache.
func TestQualityMetricsChangeCellKey(t *testing.T) {
	plain := qualitySpec(Algo("B-TCTP", patrol.Planned(&core.BTCTP{})))
	plain.Metrics = []Metric{AvgDCDT()}
	quality := qualitySpec(Algo("B-TCTP", patrol.Planned(&core.BTCTP{})))
	quality.Metrics = append([]Metric{AvgDCDT()}, Quality()...)

	jp, err := Plan(plain)
	if err != nil {
		t.Fatal(err)
	}
	jq, err := Plan(quality)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := jp.CellKey(0)
	if err != nil {
		t.Fatal(err)
	}
	kq, err := jq.CellKey(0)
	if err != nil {
		t.Fatal(err)
	}
	if kp == kq {
		t.Fatalf("quality metrics did not change the cell key %s", kp)
	}
}
