package sweep

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/xrand"
)

// shardSpec is a single-cell spec with enough replications for the
// in-cell shard split to matter, plus a vector metric so the vector
// merge path is covered.
func shardSpec() Spec {
	return Spec{
		Name:       "shards",
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{6},
		Mules:      []int{2},
		Horizons:   []float64{6_000},
		Metrics:    []Metric{AvgDCDT(), AvgSD(), MaxInterval()},
		Vectors:    []VectorMetric{DCDTCurve(10)},
		Seeds:      12,
		RepShards:  4,
	}
}

// TestRepShardsWorkerInvariance is the acceptance gate for in-cell
// replication sharding: a single-cell sweep's output — sink bytes and
// every summary moment — is byte-identical at 1, 2, and 8 workers with
// sharding enabled, because the fold order is fixed by the shard
// layout rather than by delivery timing.
func TestRepShardsWorkerInvariance(t *testing.T) {
	outputs := make([]string, 0, 3)
	results := make([]*Result, 0, 3)
	for _, workers := range []int{1, 2, 8} {
		spec := shardSpec()
		spec.Workers = workers
		var buf bytes.Buffer
		res, err := Run(context.Background(), spec, CSV(&buf), JSONL(&buf))
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
		results = append(results, res)
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("sink bytes differ between workers=1 and variant %d:\n%s\nvs\n%s",
				i, outputs[0], outputs[i])
		}
	}
	for i := 1; i < len(results); i++ {
		a, b := results[0].Cells[0], results[i].Cells[0]
		for m := range a.Metrics {
			if a.Metrics[m] != b.Metrics[m] {
				t.Fatalf("metric %s differs across worker counts: %+v vs %+v",
					a.Metrics[m].Name, a.Metrics[m], b.Metrics[m])
			}
		}
		for v := range a.Vectors {
			av, bv := a.Vectors[v], b.Vectors[v]
			for k := range av.Mean {
				if av.Mean[k] != bv.Mean[k] || av.N[k] != bv.N[k] {
					t.Fatalf("vector %s position %d differs across worker counts", av.Name, k)
				}
			}
		}
	}
}

// TestRepShardsMatchesUnsharded pins the sharded fold against the
// classic seed-ordered fold: the exact moments (count, min, max) are
// identical, and mean/SD agree to floating-point merge tolerance —
// they fold the same 12 values, just parenthesized differently.
func TestRepShardsMatchesUnsharded(t *testing.T) {
	flat := shardSpec()
	flat.RepShards = 0
	sharded := shardSpec()
	want, err := Run(context.Background(), flat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != want.Runs {
		t.Fatalf("runs %d, unsharded %d", got.Runs, want.Runs)
	}
	for m := range want.Cells[0].Metrics {
		a, b := want.Cells[0].Metrics[m], got.Cells[0].Metrics[m]
		if a.N != b.N || a.Min != b.Min || a.Max != b.Max {
			t.Fatalf("metric %s exact moments differ: %+v vs %+v", a.Name, a, b)
		}
		if rel := math.Abs(a.Mean-b.Mean) / math.Max(math.Abs(a.Mean), 1); rel > 1e-12 {
			t.Fatalf("metric %s mean drifted: %v vs %v", a.Name, a.Mean, b.Mean)
		}
		if diff := math.Abs(a.SD - b.SD); diff > 1e-9*math.Max(a.SD, 1) {
			t.Fatalf("metric %s SD drifted: %v vs %v", a.Name, a.SD, b.SD)
		}
	}
}

// TestRepShardsClamp asks for far more shards than replications across
// a multi-cell sweep; the collector clamps the shard count and the
// output stays worker-invariant.
func TestRepShardsClamp(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, workers := range []int{1, 8} {
		spec := tinySpec()
		spec.RepShards = 64 // Seeds is 3
		spec.Workers = workers
		var buf bytes.Buffer
		res, err := Run(context.Background(), spec, CSV(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if res.Runs != 4*3 {
			t.Fatalf("%d runs", res.Runs)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("clamped shard output differs across workers:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// TestRepShardsValidation covers the three rejected combinations: a
// negative shard count, sharding under adaptive replication, and
// sharding with checkpointing.
func TestRepShardsValidation(t *testing.T) {
	neg := tinySpec()
	neg.RepShards = -1
	if _, err := Run(context.Background(), neg); err == nil {
		t.Fatal("negative RepShards accepted")
	}

	ad := tinySpec()
	ad.RepShards = 2
	ad.Adaptive = &Adaptive{Metric: "avg_dcdt_s", RelCI: 0.2, MaxReps: 10}
	if _, err := Run(context.Background(), ad); err == nil {
		t.Fatal("RepShards with Adaptive accepted")
	}

	ck := tinySpec()
	ck.RepShards = 2
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if _, err := RunCheckpointed(context.Background(), ck, path); err == nil {
		t.Fatal("RepShards with checkpointing accepted")
	}
}

// TestRepShardsError pins error determinism under sharding: the first
// failing replication in (cell, seed) order wins at any worker count,
// exactly as in the unsharded fold.
func TestRepShardsError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		spec := tinySpec()
		spec.RepShards = 3
		spec.Workers = workers
		spec.Seeds = 9
		spec.Scenario = func(p Point, src *xrand.Source) *field.Scenario {
			s := field.Generate(field.Config{NumTargets: p.Targets, NumMules: p.Mules}, src)
			if p.Targets == 8 {
				s.MuleStarts = nil // fails inside patrol.Run
			}
			return s
		}
		_, err := Run(context.Background(), spec)
		if err == nil {
			t.Fatalf("workers=%d: invalid cell accepted", workers)
		}
		if !strings.Contains(err.Error(), "targets=8") || !strings.Contains(err.Error(), "alg=btctp") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// TestRepShardsJobMerge runs a sharded spec through the distributed
// Plan/Shard/Merge path and pins the merged output to a direct run of
// the same spec.
func TestRepShardsJobMerge(t *testing.T) {
	spec := tinySpec()
	spec.RepShards = 2
	spec.Seeds = 6

	var direct bytes.Buffer
	want, err := Run(context.Background(), spec, CSV(&direct))
	if err != nil {
		t.Fatal(err)
	}

	job, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	partials := make([]*Partial, 2)
	for i := range partials {
		shard, serr := job.Shard(i, 2)
		if serr != nil {
			t.Fatal(serr)
		}
		if partials[i], serr = shard.Run(context.Background(), RunOpts{}); serr != nil {
			t.Fatal(serr)
		}
	}
	var merged bytes.Buffer
	got, err := Merge(spec, partials, CSV(&merged))
	if err != nil {
		t.Fatal(err)
	}
	if merged.String() != direct.String() {
		t.Fatalf("merged output differs from direct run:\n%s\nvs\n%s", merged.String(), direct.String())
	}
	for c := range want.Cells {
		for m := range want.Cells[c].Metrics {
			if want.Cells[c].Metrics[m] != got.Cells[c].Metrics[m] {
				t.Fatalf("cell %d metric %s differs after merge", c, want.Cells[c].Metrics[m].Name)
			}
		}
	}
}
