package server_test

// The remote-plane contract, end to end over real HTTP: a sweep served
// by a fleet of tctp-worker loops is byte-identical to a local run at
// any worker count, survives a worker dying mid-sweep, never leases a
// warm cell, and releases its admission slot the moment it completes.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tctp/internal/sweep"
	"tctp/internal/sweep/build"
	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/dispatch"
	"tctp/internal/sweep/protocol"
	"tctp/internal/sweep/server"
	"tctp/internal/sweep/worker"
)

// newRemoteServer builds a server whose cells are computed only by
// attached workers, with the given lease TTL.
func newRemoteServer(t *testing.T, ttl time.Duration, cfg server.Config) (*httptest.Server, *cache.Store, *dispatch.Scheduler) {
	t.Helper()
	store := cfg.Store
	if store == nil {
		var err error
		store, err = cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	sched, err := dispatch.New(dispatch.Options{Store: store, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sched.Close)
	cfg.Dispatch = sched
	return newServer(t, cfg), store, sched
}

// startWorker runs a real worker loop against the test server until
// the test ends.
func startWorker(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = worker.Run(ctx, worker.Options{Server: ts.URL, ID: id, Poll: time.Second, Logf: t.Logf})
	}()
	t.Cleanup(func() { cancel(); <-done })
}

// localReference runs the request in-process — the byte-identity bar
// every remote configuration must clear.
func localReference(t *testing.T, req protocol.SweepRequest) (csv, jsonl []byte) {
	t.Helper()
	spec, err := build.Spec(req)
	if err != nil {
		t.Fatal(err)
	}
	var cb, jb bytes.Buffer
	if _, err := sweep.Run(context.Background(), spec, sweep.CSV(&cb), sweep.JSONL(&jb)); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

func sweepStatus(t *testing.T, ts *httptest.Server, id string) protocol.SweepStatus {
	t.Helper()
	var st protocol.SweepStatus
	if err := json.Unmarshal(fetch(t, ts.URL+"/sweeps/"+id), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func serverStats(t *testing.T, ts *httptest.Server) server.Stats {
	t.Helper()
	var st server.Stats
	if err := json.Unmarshal(fetch(t, ts.URL+"/stats"), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// postJSON sends one raw JSON POST — the fake-worker side of the wire.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestRemoteWorkersByteIdentity: two workers serve a sweep over real
// HTTP; CSV and JSONL match the local run byte for byte, and every
// cell is attributed to the fleet.
func TestRemoteWorkersByteIdentity(t *testing.T) {
	ts, _, _ := newRemoteServer(t, 30*time.Second, server.Config{})
	startWorker(t, ts, "w1")
	startWorker(t, ts, "w2")

	req := testRequest()
	wantCSV, wantJSONL := localReference(t, req)

	sub := submit(t, ts, req)
	csv := fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.csv")
	jsonl := fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.jsonl")
	if !bytes.Equal(csv, wantCSV) {
		t.Fatalf("remote CSV differs from local run:\n%s\nvs\n%s", csv, wantCSV)
	}
	if !bytes.Equal(jsonl, wantJSONL) {
		t.Fatal("remote JSONL differs from local run")
	}

	st := sweepStatus(t, ts, sub.ID)
	if st.State != "done" || st.Remote != 4 || st.Computed != 0 || st.Hits != 0 {
		t.Fatalf("remote sweep status %+v, want 4 remote cells", st)
	}
	stats := serverStats(t, ts)
	if stats.Scheduler == nil {
		t.Fatal("/stats has no scheduler section on a remote server")
	}
	if stats.Scheduler.RemoteComputed != 4 || stats.Scheduler.Queued != 4 {
		t.Fatalf("scheduler stats %+v", stats.Scheduler)
	}
	if len(stats.Scheduler.Workers) == 0 {
		t.Fatalf("scheduler stats name no workers: %+v", stats.Scheduler)
	}
}

// TestWorkerKillMidSweep: a fake worker takes a lease and dies without
// reporting. The lease expires, the cell is reassigned to a live
// worker, the sweep completes byte-identical to the local run — and
// the dead worker's eventual late post is refused as stale without
// perturbing the result.
func TestWorkerKillMidSweep(t *testing.T) {
	ts, _, _ := newRemoteServer(t, time.Second, server.Config{})
	req := testRequest()
	wantCSV, _ := localReference(t, req)

	sub := submit(t, ts, req)

	// The doomed worker grabs the first lease and never reports. The
	// long poll also synchronizes the test with the sweep's enqueue.
	status, body := postJSON(t, ts.URL+"/workers/lease",
		protocol.LeaseRequest{Worker: "doomed", WaitSeconds: 10})
	if status != http.StatusOK {
		t.Fatalf("doomed lease: HTTP %d: %s", status, body)
	}
	var doomed protocol.CellLease
	if err := json.Unmarshal(body, &doomed); err != nil {
		t.Fatal(err)
	}

	// A live worker drains the queue, including the reassigned cell
	// once the doomed lease expires.
	startWorker(t, ts, "w1")

	csv := fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.csv")
	if !bytes.Equal(csv, wantCSV) {
		t.Fatalf("CSV after worker loss differs from local run:\n%s\nvs\n%s", csv, wantCSV)
	}
	st := sweepStatus(t, ts, sub.ID)
	if st.State != "done" || st.Remote != 4 {
		t.Fatalf("status after worker loss %+v", st)
	}
	stats := serverStats(t, ts)
	if stats.Scheduler.Expired < 1 || stats.Scheduler.Reassigned < 1 {
		t.Fatalf("worker loss left no expiry/reassignment trace: %+v", stats.Scheduler)
	}

	// The doomed worker rises and posts its stale lease: refused, and
	// the published result is untouched.
	state := protocol.FoldState{Next: 1}
	status, body = postJSON(t, ts.URL+"/workers/result", protocol.FoldResult{
		Lease: doomed.ID, Worker: "doomed", Key: doomed.Key, State: &state,
	})
	var ack protocol.LeaseAck
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatalf("stale post answered %d %q: %v", status, body, err)
	}
	if status != http.StatusConflict || !ack.Stale || ack.Accepted {
		t.Fatalf("stale post: HTTP %d, ack %+v; want 409 + stale", status, ack)
	}
	if got := serverStats(t, ts).Scheduler.StaleResults; got < 1 {
		t.Fatalf("stale post not counted: %d", got)
	}
	if again := fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.csv"); !bytes.Equal(again, wantCSV) {
		t.Fatal("stale post changed the published result")
	}
}

// TestCacheAwareScheduling: re-submitting a superset grid over a warm
// cache leases only the missing cells — the warm ones are probe-served
// and never reach the queue.
func TestCacheAwareScheduling(t *testing.T) {
	ts, _, sched := newRemoteServer(t, 30*time.Second, server.Config{})
	startWorker(t, ts, "w1")

	subset := testRequest()
	subset.Targets = "6" // 2 of the 4 superset cells
	sub := submit(t, ts, subset)
	fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.csv")
	if st := sched.Stats(); st.Queued != 2 || st.RemoteComputed != 2 {
		t.Fatalf("subset scheduler stats %+v", st)
	}

	superset := testRequest() // targets 6,8 — 2 warm cells, 2 missing
	sub2 := submit(t, ts, superset)
	fetch(t, ts.URL+"/sweeps/"+sub2.ID+"/result.csv")

	st := sweepStatus(t, ts, sub2.ID)
	if st.Hits != 2 || st.Remote != 2 {
		t.Fatalf("superset status %+v, want 2 hits + 2 remote", st)
	}
	ss := sched.Stats()
	if ss.CacheSkips != 2 {
		t.Fatalf("warm cells not probe-served: %+v", ss)
	}
	// Zero leases for cached cells: every lease ever granted was for
	// one of the 4 distinct cold cells, none for the 2 warm ones.
	if ss.Queued != 4 || ss.Leased != 4 || ss.RemoteComputed != 4 {
		t.Fatalf("superset leased warm cells: %+v", ss)
	}
}

// TestCapacityReleasedOnCompletion is the admission regression test: a
// sweep must stop counting against -max-sweeps the moment it
// completes — observing state "done" guarantees the slot is free, even
// if the result is never fetched.
func TestCapacityReleasedOnCompletion(t *testing.T) {
	ts, _, _ := newRemoteServer(t, 30*time.Second, server.Config{MaxSweeps: 1})
	req := testRequest()

	// With no workers attached the first sweep is genuinely in flight,
	// so the second submission deterministically hits capacity.
	sub := submit(t, ts, req)
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submission while in flight: %s, want 429", resp.Status)
	}

	// Let a worker finish the sweep, then wait for "done" via status
	// polling only — the result is never fetched.
	startWorker(t, ts, "w1")
	deadline := time.Now().Add(30 * time.Second)
	for sweepStatus(t, ts, sub.ID).State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never completed; status %+v", sweepStatus(t, ts, sub.ID))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The slot must be free now: same sweep again (all warm, completes
	// without workers) — 202, not 429.
	sub2 := submit(t, ts, req)
	if st := sweepStatus(t, ts, sub.ID); st.State != "done" {
		t.Fatalf("first sweep regressed: %+v", st)
	}
	fetch(t, ts.URL+"/sweeps/"+sub2.ID+"/result.csv")
}

// TestWorkerEndpointsLocalMode: a server computing locally has no
// scheduler; the worker endpoints refuse rather than hang.
func TestWorkerEndpointsLocalMode(t *testing.T) {
	ts := newServer(t, server.Config{})
	for path, v := range map[string]any{
		"/workers/lease":     protocol.LeaseRequest{Worker: "w1"},
		"/workers/result":    protocol.FoldResult{Lease: "L1"},
		"/workers/heartbeat": protocol.LeaseHeartbeat{Lease: "L1"},
	} {
		status, body := postJSON(t, ts.URL+path, v)
		if status != http.StatusConflict || !strings.Contains(string(body), "local") {
			t.Errorf("%s on local server: HTTP %d %q, want 409", path, status, body)
		}
	}
}

// TestLeaseRequestValidation: a lease request without a worker id is a
// client bug, answered 400.
func TestLeaseRequestValidation(t *testing.T) {
	ts, _, _ := newRemoteServer(t, 30*time.Second, server.Config{})
	status, body := postJSON(t, ts.URL+"/workers/lease", protocol.LeaseRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty worker id: HTTP %d %q, want 400", status, body)
	}
}

// TestConcurrentSweepsShareFleet: several distinct sweeps in flight at
// once are all served by the same two workers, each byte-identical to
// its local run — the fleet is a shared resource, not per-sweep.
func TestConcurrentSweepsShareFleet(t *testing.T) {
	ts, _, _ := newRemoteServer(t, 30*time.Second, server.Config{MaxSweeps: 3})
	startWorker(t, ts, "w1")
	startWorker(t, ts, "w2")

	reqs := []protocol.SweepRequest{testRequest(), testRequest(), testRequest()}
	reqs[1].Seeds = 3     // distinct protocol → distinct cells
	reqs[2].Targets = "7" // distinct grid

	// Submit everything first so the sweeps genuinely overlap, then
	// collect each result (the blocking fetch is the completion wait).
	ids := make([]string, len(reqs))
	wants := make([][]byte, len(reqs))
	for i, req := range reqs {
		wants[i], _ = localReference(t, req)
		ids[i] = submit(t, ts, req).ID
	}
	for i, id := range ids {
		if got := fetch(t, ts.URL+"/sweeps/"+id+"/result.csv"); !bytes.Equal(got, wants[i]) {
			t.Errorf("sweep %d differs from its local run", i)
		}
	}
}
