// Package server implements the sweep service: an HTTP/JSON front end
// that accepts transport-neutral sweep requests (protocol.SweepRequest),
// plans them with the same builder the CLI uses, and executes them
// through a shared content-addressed cell cache. Overlapping sweeps
// share cells, repeated sweeps cost no simulation at all, and N
// concurrent submissions of the same sweep collapse to one computation
// (single-flight) — while every result stays byte-identical to a local
// `tctp-sweep` run of the same flags.
//
// Endpoints:
//
//	POST /sweeps                 submit a SweepRequest; 202 + SubmitResponse,
//	                             or 429 + Retry-After when at capacity
//	GET  /sweeps/{id}            SweepStatus
//	GET  /sweeps/{id}/events     NDJSON event stream: one "cell" event per
//	                             resolved cell (with its source: computed /
//	                             hit / joined), then "done" or "error"
//	GET  /sweeps/{id}/result.csv    the sweep's CSV, blocking until done
//	GET  /sweeps/{id}/result.jsonl  the sweep's JSONL, blocking until done
//	GET  /stats                  cache, admission, and scheduler counters
//
// With a dispatch scheduler attached (Config.Dispatch; tctp-server
// -workers remote), the server stops computing cells in-process and
// instead serves a worker fleet over three more endpoints:
//
//	POST /workers/lease          long-poll for a CellLease (204 = no work)
//	POST /workers/result         post a leased cell's FoldState; stale
//	                             leases answer 409, invalid states 422
//	POST /workers/heartbeat      extend a lease mid-computation
//
// Scheduling stays cache-aware — every cell is probed against the
// shared store before it can enter the lease queue, so warm cells are
// never dispatched — and results stay byte-identical to local runs at
// any fleet size (see internal/sweep/dispatch).
//
// Backpressure is two-layered: admission (at most MaxSweeps sweeps in
// flight; beyond that POST /sweeps returns 429 with Retry-After) and
// the cache's compute gate (cache.Options.Gate), which bounds how many
// cell simulations run at once across all admitted sweeps — cache
// hits and single-flight joins bypass the gate entirely, so a warm
// server stays responsive even at its compute limit. A sweep holds its
// admission slot only while it runs: capacity is released the moment
// the sweep finishes, never held until its result is fetched.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tctp/internal/sweep"
	"tctp/internal/sweep/build"
	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/dispatch"
	"tctp/internal/sweep/protocol"
)

// Config configures a Server.
type Config struct {
	// Store is the shared cell cache (required). Its Gate option is
	// the server's compute-concurrency bound.
	Store *cache.Store
	// Dispatch, when non-nil, switches the server to remote compute:
	// missing cells are leased to the worker fleet through this
	// scheduler instead of simulated in-process. The scheduler must
	// share Store (its probe is what keeps warm cells out of the
	// queue).
	Dispatch *dispatch.Scheduler
	// MaxSweeps bounds concurrently executing sweeps; submissions
	// beyond it receive 429 + Retry-After. Default 8. Negative means
	// zero (every submission rejected — useful only in tests).
	MaxSweeps int
	// Parallel is each sweep's cell-resolution concurrency
	// (sweep.CacheRunOpts.Parallel); 0 = GOMAXPROCS. Cells that miss
	// are additionally gated by the store, so this mostly bounds how
	// many cache lookups and joins a single sweep keeps in flight.
	Parallel int
	// RetryAfter is the Retry-After hint (seconds) on 429 responses;
	// default 2.
	RetryAfter int
}

// Stats is the GET /stats document: the shared cache's counters plus
// the admission counters, and — when a worker fleet is attached — the
// dispatch scheduler's.
type Stats struct {
	Cache cache.Stats `json:"cache"`
	// Submitted counts accepted sweeps, Rejected 429s, Active the
	// sweeps executing right now, Done and Failed the finished ones.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Active    int   `json:"active"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	// Scheduler is the remote plane's counters (queued/leased/expired/
	// reassigned/remote-computed and per-worker rows); absent when the
	// server computes locally.
	Scheduler *dispatch.Stats `json:"scheduler,omitempty"`
}

// sweepRun is the server-side state of one submitted sweep.
type sweepRun struct {
	id  string
	fp  string
	req protocol.SweepRequest // normalized request, what leases carry

	mu       sync.Mutex
	state    string // "running", "done", "failed"
	events   []protocol.Event
	notify   chan struct{} // closed and replaced on every append
	cells    int
	done     int
	hits     int
	computed int
	joined   int
	remote   int
	csv      []byte
	jsonl    []byte
	errMsg   string
	finished chan struct{}
}

// Server is the sweep service. It implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu        sync.Mutex
	sweeps    map[string]*sweepRun
	nextID    int
	active    int
	submitted int64
	rejected  int64
	doneN     int
	failedN   int
}

// New builds a Server around a shared cell cache.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if cfg.MaxSweeps == 0 {
		cfg.MaxSweeps = 8
	}
	if cfg.MaxSweeps < 0 {
		cfg.MaxSweeps = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		sweeps: make(map[string]*sweepRun),
	}
	s.mux.HandleFunc("POST /sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /sweeps/{id}/result.csv", s.handleResult)
	s.mux.HandleFunc("GET /sweeps/{id}/result.jsonl", s.handleResult)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /workers/lease", s.handleLease)
	s.mux.HandleFunc("POST /workers/result", s.handleWorkerResult)
	s.mux.HandleFunc("POST /workers/heartbeat", s.handleHeartbeat)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit admits, plans, and launches a sweep.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req protocol.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	// Execution-side knobs are the server's to choose, not the
	// client's: a request cannot oversubscribe the shared machine.
	req.Workers = 0
	spec, err := build.Spec(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	job, err := sweep.Plan(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}

	s.mu.Lock()
	if s.active >= s.cfg.MaxSweeps {
		s.rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
		httpError(w, http.StatusTooManyRequests,
			"sweep capacity reached (%d in flight); retry after %ds",
			s.cfg.MaxSweeps, s.cfg.RetryAfter)
		return
	}
	s.active++
	s.submitted++
	s.nextID++
	sr := &sweepRun{
		id:       fmt.Sprintf("s%d", s.nextID),
		fp:       job.Fingerprint(),
		req:      req,
		state:    "running",
		cells:    job.Cells(),
		notify:   make(chan struct{}),
		finished: make(chan struct{}),
	}
	s.sweeps[sr.id] = sr
	s.mu.Unlock()

	skipped := job.TotalCells() - job.Cells()
	go s.execute(sr, job)

	writeJSON(w, http.StatusAccepted, protocol.SubmitResponse{
		ID: sr.id, Fingerprint: sr.fp, Cells: sr.cells, Skipped: skipped,
	})
}

// execute runs the sweep — through the shared cache in-process, or
// through the dispatch scheduler's worker fleet — and records its
// events and final artifacts.
func (s *Server) execute(sr *sweepRun, job *sweep.Job) {
	var csvBuf, jsonlBuf bytes.Buffer
	opts := sweep.CacheRunOpts{
		Store:    s.cfg.Store,
		Parallel: s.cfg.Parallel,
		Sinks:    []sweep.Sink{sweep.CSV(&csvBuf), sweep.JSONL(&jsonlBuf)},
		OnCell:   sr.cell,
	}
	if s.cfg.Dispatch != nil {
		// Remote plane: each cell is probed against the shared cache and,
		// on a miss, leased to the worker fleet. The engine's central
		// validation still re-checks whatever comes back.
		opts.Resolve = func(ctx context.Context, rc sweep.ResolveCell) (protocol.FoldState, protocol.Source, error) {
			return s.cfg.Dispatch.Resolve(ctx, dispatch.Cell{
				Sweep:       sr.id,
				Index:       rc.Index,
				Key:         rc.Key,
				Fingerprint: sr.fp,
				Request:     sr.req,
				Validate:    rc.Validate,
			})
		}
	}
	_, err := job.RunCached(context.Background(), opts)

	// Release the admission slot before the sweep becomes observably
	// finished: a client that sees "done" (or receives the result) and
	// immediately submits again must never bounce off capacity this
	// sweep was still holding.
	s.mu.Lock()
	s.active--
	if err != nil {
		s.failedN++
	} else {
		s.doneN++
	}
	s.mu.Unlock()

	sr.mu.Lock()
	if err != nil {
		sr.state = "failed"
		sr.errMsg = err.Error()
		sr.append(protocol.Event{Type: "error", Error: sr.errMsg})
	} else {
		sr.state = "done"
		sr.csv = csvBuf.Bytes()
		sr.jsonl = jsonlBuf.Bytes()
		sr.append(protocol.Event{Type: "done", Cells: sr.done, Runs: runsOf(sr)})
	}
	sr.mu.Unlock()
	close(sr.finished)
}

// runsOf sums folded replications over the recorded cell events.
// Caller holds sr.mu.
func runsOf(sr *sweepRun) int {
	runs := 0
	for _, ev := range sr.events {
		if ev.Type != "cell" || ev.Result == nil {
			continue
		}
		var c struct {
			Reps int `json:"reps"`
		}
		if json.Unmarshal(ev.Result, &c) == nil {
			runs += c.Reps
		}
	}
	return runs
}

// cell records one resolved cell as an event (called concurrently by
// the cached run).
func (sr *sweepRun) cell(u sweep.CellUpdate) {
	res, _ := json.Marshal(u.Result)
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.done++
	switch {
	case u.Source == protocol.SourceHit:
		sr.hits++
	case u.Source == protocol.SourceJoined:
		sr.joined++
	case strings.HasPrefix(string(u.Source), "worker:"):
		sr.remote++
	default:
		sr.computed++
	}
	sr.append(protocol.Event{
		Type: "cell", Cell: u.Index, Key: u.Key, Source: u.Source, Result: res,
	})
}

// append records an event and wakes the streamers. Caller holds sr.mu.
func (sr *sweepRun) append(ev protocol.Event) {
	sr.events = append(sr.events, ev)
	close(sr.notify)
	sr.notify = make(chan struct{})
}

func (sr *sweepRun) status() protocol.SweepStatus {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return protocol.SweepStatus{
		ID: sr.id, State: sr.state, Fingerprint: sr.fp,
		Cells: sr.cells, CellsDone: sr.done,
		Hits: sr.hits, Computed: sr.computed, Joined: sr.joined,
		Remote: sr.remote,
		Error:  sr.errMsg,
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweepRun {
	id := r.PathValue("id")
	s.mu.Lock()
	sr := s.sweeps[id]
	s.mu.Unlock()
	if sr == nil {
		httpError(w, http.StatusNotFound, "unknown sweep %q", id)
	}
	return sr
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sr := s.lookup(w, r); sr != nil {
		writeJSON(w, http.StatusOK, sr.status())
	}
}

// handleEvents streams the sweep's events as NDJSON: everything
// recorded so far, then live until the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sr := s.lookup(w, r)
	if sr == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		sr.mu.Lock()
		batch := sr.events[next:]
		next = len(sr.events)
		terminal := sr.state != "running"
		notify := sr.notify
		sr.mu.Unlock()
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult serves the finished sweep's CSV or JSONL, blocking
// until the sweep completes. A failed sweep answers 409 with its
// error.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sr := s.lookup(w, r)
	if sr == nil {
		return
	}
	select {
	case <-sr.finished:
	case <-r.Context().Done():
		return
	}
	sr.mu.Lock()
	failed, errMsg := sr.state == "failed", sr.errMsg
	body := sr.csv
	ctype := "text/csv"
	if strings.HasSuffix(r.URL.Path, ".jsonl") {
		body = sr.jsonl
		ctype = "application/x-ndjson"
	}
	sr.mu.Unlock()
	if failed {
		httpError(w, http.StatusConflict, "sweep %s failed: %s", sr.id, errMsg)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{
		Submitted: s.submitted, Rejected: s.rejected,
		Active: s.active, Done: s.doneN, Failed: s.failedN,
	}
	s.mu.Unlock()
	st.Cache = s.cfg.Store.Stats()
	if s.cfg.Dispatch != nil {
		sched := s.cfg.Dispatch.Stats()
		st.Scheduler = &sched
	}
	writeJSON(w, http.StatusOK, st)
}

// requireDispatch answers the worker endpoints on a local-compute
// server: there is no scheduler to talk to.
func (s *Server) requireDispatch(w http.ResponseWriter) bool {
	if s.cfg.Dispatch == nil {
		httpError(w, http.StatusConflict, "this server computes locally (-workers local); no leases to serve")
		return false
	}
	return true
}

// handleLease long-polls the scheduler for one cell lease. 204 means
// the poll elapsed with no work.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if !s.requireDispatch(w) {
		return
	}
	var req protocol.LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease request needs a worker id")
		return
	}
	wait := req.WaitSeconds
	if wait < 0 {
		wait = 0
	}
	if wait > 30 {
		wait = 30
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(wait)*time.Second)
	defer cancel()
	lease, err := s.cfg.Dispatch.Lease(ctx, req.Worker)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "lease: %v", err)
		return
	}
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

// handleWorkerResult accepts a leased cell's fold state. Stale leases
// (expired, reassigned, already completed) answer 409; states the
// scheduler refuses answer 422 — in both cases with the LeaseAck body,
// so workers act on the ack rather than the status line.
func (s *Server) handleWorkerResult(w http.ResponseWriter, r *http.Request) {
	if !s.requireDispatch(w) {
		return
	}
	var res protocol.FoldResult
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&res); err != nil {
		httpError(w, http.StatusBadRequest, "bad fold result: %v", err)
		return
	}
	ack := s.cfg.Dispatch.Complete(res)
	switch {
	case ack.Stale:
		writeJSON(w, http.StatusConflict, ack)
	case !ack.Accepted:
		writeJSON(w, http.StatusUnprocessableEntity, ack)
	default:
		writeJSON(w, http.StatusOK, ack)
	}
}

// handleHeartbeat extends a live lease; stale leases answer 409 so the
// worker abandons the cell.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.requireDispatch(w) {
		return
	}
	var hb protocol.LeaseHeartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&hb); err != nil {
		httpError(w, http.StatusBadRequest, "bad heartbeat: %v", err)
		return
	}
	ack := s.cfg.Dispatch.Heartbeat(hb)
	if ack.Stale {
		writeJSON(w, http.StatusConflict, ack)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}
