// Package server implements the sweep service: an HTTP/JSON front end
// that accepts transport-neutral sweep requests (protocol.SweepRequest),
// plans them with the same builder the CLI uses, and executes them
// through a shared content-addressed cell cache. Overlapping sweeps
// share cells, repeated sweeps cost no simulation at all, and N
// concurrent submissions of the same sweep collapse to one computation
// (single-flight) — while every result stays byte-identical to a local
// `tctp-sweep` run of the same flags.
//
// Endpoints:
//
//	POST /sweeps                 submit a SweepRequest; 202 + SubmitResponse,
//	                             or 429 + Retry-After when at capacity
//	GET  /sweeps/{id}            SweepStatus
//	GET  /sweeps/{id}/events     NDJSON event stream: one "cell" event per
//	                             resolved cell (with its source: computed /
//	                             hit / joined), then "done" or "error"
//	GET  /sweeps/{id}/result.csv    the sweep's CSV, blocking until done
//	GET  /sweeps/{id}/result.jsonl  the sweep's JSONL, blocking until done
//	GET  /stats                  cache and admission counters
//
// Backpressure is two-layered: admission (at most MaxSweeps sweeps in
// flight; beyond that POST /sweeps returns 429 with Retry-After) and
// the cache's compute gate (cache.Options.Gate), which bounds how many
// cell simulations run at once across all admitted sweeps — cache
// hits and single-flight joins bypass the gate entirely, so a warm
// server stays responsive even at its compute limit.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"tctp/internal/sweep"
	"tctp/internal/sweep/build"
	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/protocol"
)

// Config configures a Server.
type Config struct {
	// Store is the shared cell cache (required). Its Gate option is
	// the server's compute-concurrency bound.
	Store *cache.Store
	// MaxSweeps bounds concurrently executing sweeps; submissions
	// beyond it receive 429 + Retry-After. Default 8. Negative means
	// zero (every submission rejected — useful only in tests).
	MaxSweeps int
	// Parallel is each sweep's cell-resolution concurrency
	// (sweep.CacheRunOpts.Parallel); 0 = GOMAXPROCS. Cells that miss
	// are additionally gated by the store, so this mostly bounds how
	// many cache lookups and joins a single sweep keeps in flight.
	Parallel int
	// RetryAfter is the Retry-After hint (seconds) on 429 responses;
	// default 2.
	RetryAfter int
}

// Stats is the GET /stats document: the shared cache's counters plus
// the admission counters.
type Stats struct {
	Cache cache.Stats `json:"cache"`
	// Submitted counts accepted sweeps, Rejected 429s, Active the
	// sweeps executing right now, Done and Failed the finished ones.
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Active    int   `json:"active"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
}

// sweepRun is the server-side state of one submitted sweep.
type sweepRun struct {
	id string
	fp string

	mu       sync.Mutex
	state    string // "running", "done", "failed"
	events   []protocol.Event
	notify   chan struct{} // closed and replaced on every append
	cells    int
	done     int
	hits     int
	computed int
	joined   int
	csv      []byte
	jsonl    []byte
	errMsg   string
	finished chan struct{}
}

// Server is the sweep service. It implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu        sync.Mutex
	sweeps    map[string]*sweepRun
	nextID    int
	active    int
	submitted int64
	rejected  int64
	doneN     int
	failedN   int
}

// New builds a Server around a shared cell cache.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	if cfg.MaxSweeps == 0 {
		cfg.MaxSweeps = 8
	}
	if cfg.MaxSweeps < 0 {
		cfg.MaxSweeps = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		sweeps: make(map[string]*sweepRun),
	}
	s.mux.HandleFunc("POST /sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /sweeps/{id}/result.csv", s.handleResult)
	s.mux.HandleFunc("GET /sweeps/{id}/result.jsonl", s.handleResult)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit admits, plans, and launches a sweep.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req protocol.SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	// Execution-side knobs are the server's to choose, not the
	// client's: a request cannot oversubscribe the shared machine.
	req.Workers = 0
	spec, err := build.Spec(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	job, err := sweep.Plan(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}

	s.mu.Lock()
	if s.active >= s.cfg.MaxSweeps {
		s.rejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
		httpError(w, http.StatusTooManyRequests,
			"sweep capacity reached (%d in flight); retry after %ds",
			s.cfg.MaxSweeps, s.cfg.RetryAfter)
		return
	}
	s.active++
	s.submitted++
	s.nextID++
	sr := &sweepRun{
		id:       fmt.Sprintf("s%d", s.nextID),
		fp:       job.Fingerprint(),
		state:    "running",
		cells:    job.Cells(),
		notify:   make(chan struct{}),
		finished: make(chan struct{}),
	}
	s.sweeps[sr.id] = sr
	s.mu.Unlock()

	skipped := job.TotalCells() - job.Cells()
	go s.execute(sr, job)

	writeJSON(w, http.StatusAccepted, protocol.SubmitResponse{
		ID: sr.id, Fingerprint: sr.fp, Cells: sr.cells, Skipped: skipped,
	})
}

// execute runs the sweep through the shared cache and records its
// events and final artifacts.
func (s *Server) execute(sr *sweepRun, job *sweep.Job) {
	var csvBuf, jsonlBuf bytes.Buffer
	_, err := job.RunCached(context.Background(), sweep.CacheRunOpts{
		Store:    s.cfg.Store,
		Parallel: s.cfg.Parallel,
		Sinks:    []sweep.Sink{sweep.CSV(&csvBuf), sweep.JSONL(&jsonlBuf)},
		OnCell:   sr.cell,
	})

	sr.mu.Lock()
	if err != nil {
		sr.state = "failed"
		sr.errMsg = err.Error()
		sr.append(protocol.Event{Type: "error", Error: sr.errMsg})
	} else {
		sr.state = "done"
		sr.csv = csvBuf.Bytes()
		sr.jsonl = jsonlBuf.Bytes()
		sr.append(protocol.Event{Type: "done", Cells: sr.done, Runs: runsOf(sr)})
	}
	sr.mu.Unlock()
	close(sr.finished)

	s.mu.Lock()
	s.active--
	if err != nil {
		s.failedN++
	} else {
		s.doneN++
	}
	s.mu.Unlock()
}

// runsOf sums folded replications over the recorded cell events.
// Caller holds sr.mu.
func runsOf(sr *sweepRun) int {
	runs := 0
	for _, ev := range sr.events {
		if ev.Type != "cell" || ev.Result == nil {
			continue
		}
		var c struct {
			Reps int `json:"reps"`
		}
		if json.Unmarshal(ev.Result, &c) == nil {
			runs += c.Reps
		}
	}
	return runs
}

// cell records one resolved cell as an event (called concurrently by
// the cached run).
func (sr *sweepRun) cell(u sweep.CellUpdate) {
	res, _ := json.Marshal(u.Result)
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.done++
	switch u.Source {
	case protocol.SourceHit:
		sr.hits++
	case protocol.SourceJoined:
		sr.joined++
	default:
		sr.computed++
	}
	sr.append(protocol.Event{
		Type: "cell", Cell: u.Index, Key: u.Key, Source: u.Source, Result: res,
	})
}

// append records an event and wakes the streamers. Caller holds sr.mu.
func (sr *sweepRun) append(ev protocol.Event) {
	sr.events = append(sr.events, ev)
	close(sr.notify)
	sr.notify = make(chan struct{})
}

func (sr *sweepRun) status() protocol.SweepStatus {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return protocol.SweepStatus{
		ID: sr.id, State: sr.state, Fingerprint: sr.fp,
		Cells: sr.cells, CellsDone: sr.done,
		Hits: sr.hits, Computed: sr.computed, Joined: sr.joined,
		Error: sr.errMsg,
	}
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *sweepRun {
	id := r.PathValue("id")
	s.mu.Lock()
	sr := s.sweeps[id]
	s.mu.Unlock()
	if sr == nil {
		httpError(w, http.StatusNotFound, "unknown sweep %q", id)
	}
	return sr
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sr := s.lookup(w, r); sr != nil {
		writeJSON(w, http.StatusOK, sr.status())
	}
}

// handleEvents streams the sweep's events as NDJSON: everything
// recorded so far, then live until the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sr := s.lookup(w, r)
	if sr == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		sr.mu.Lock()
		batch := sr.events[next:]
		next = len(sr.events)
		terminal := sr.state != "running"
		notify := sr.notify
		sr.mu.Unlock()
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult serves the finished sweep's CSV or JSONL, blocking
// until the sweep completes. A failed sweep answers 409 with its
// error.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sr := s.lookup(w, r)
	if sr == nil {
		return
	}
	select {
	case <-sr.finished:
	case <-r.Context().Done():
		return
	}
	sr.mu.Lock()
	failed, errMsg := sr.state == "failed", sr.errMsg
	body := sr.csv
	ctype := "text/csv"
	if strings.HasSuffix(r.URL.Path, ".jsonl") {
		body = sr.jsonl
		ctype = "application/x-ndjson"
	}
	sr.mu.Unlock()
	if failed {
		httpError(w, http.StatusConflict, "sweep %s failed: %s", sr.id, errMsg)
		return
	}
	w.Header().Set("Content-Type", ctype)
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{
		Submitted: s.submitted, Rejected: s.rejected,
		Active: s.active, Done: s.doneN, Failed: s.failedN,
	}
	s.mu.Unlock()
	st.Cache = s.cfg.Store.Stats()
	writeJSON(w, http.StatusOK, st)
}
