package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tctp/internal/sweep"
	"tctp/internal/sweep/build"
	"tctp/internal/sweep/cache"
	"tctp/internal/sweep/protocol"
	"tctp/internal/sweep/server"
)

// testRequest is a small real sweep: 2 algorithms × 2 target counts.
func testRequest() protocol.SweepRequest {
	return protocol.SweepRequest{
		Algorithms: "btctp,random",
		Targets:    "6,8",
		Mules:      "2",
		Speeds:     "2",
		Seeds:      2,
		Horizon:    4_000,
	}
}

func newServer(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	if cfg.Store == nil {
		store, err := cache.New(cache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = store
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func submit(t *testing.T, ts *httptest.Server, req protocol.SweepRequest) protocol.SubmitResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, msg)
	}
	var sub protocol.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	return b
}

// TestSweepLifecycle drives the full service path: submit, wait via
// the blocking result endpoints, compare against a local in-process
// run byte for byte, re-submit and observe the cache serving
// everything, and check the status and stats documents along the way.
func TestSweepLifecycle(t *testing.T) {
	ts := newServer(t, server.Config{})
	req := testRequest()

	// A local run of the same request is the byte-identity reference.
	spec, err := build.Spec(req)
	if err != nil {
		t.Fatal(err)
	}
	var wantCSV, wantJSONL bytes.Buffer
	if _, err := sweep.Run(context.Background(), spec,
		sweep.CSV(&wantCSV), sweep.JSONL(&wantJSONL)); err != nil {
		t.Fatal(err)
	}

	sub := submit(t, ts, req)
	if sub.Cells != 4 || !strings.HasPrefix(sub.ID, "s") {
		t.Fatalf("submit response %+v", sub)
	}

	csv1 := fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.csv")
	jsonl1 := fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.jsonl")
	if !bytes.Equal(csv1, wantCSV.Bytes()) {
		t.Fatalf("server CSV differs from local run:\n%s\nvs\n%s", csv1, wantCSV.Bytes())
	}
	if !bytes.Equal(jsonl1, wantJSONL.Bytes()) {
		t.Fatal("server JSONL differs from local run")
	}

	var st protocol.SweepStatus
	if err := json.Unmarshal(fetch(t, ts.URL+"/sweeps/"+sub.ID), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.CellsDone != 4 || st.Computed != 4 || st.Hits != 0 {
		t.Fatalf("first sweep status %+v", st)
	}

	// Second submission: identical result, zero simulation.
	sub2 := submit(t, ts, req)
	csv2 := fetch(t, ts.URL+"/sweeps/"+sub2.ID+"/result.csv")
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("second submission's CSV differs from the first")
	}
	if err := json.Unmarshal(fetch(t, ts.URL+"/sweeps/"+sub2.ID), &st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 4 || st.Computed != 0 {
		t.Fatalf("second sweep should be all cache hits: %+v", st)
	}

	var stats server.Stats
	if err := json.Unmarshal(fetch(t, ts.URL+"/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted != 2 || stats.Done != 2 || stats.Cache.Hits != 4 || stats.Cache.Misses != 4 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestEventStream replays a finished sweep's NDJSON events: one cell
// event per cell with a valid key and source, then a terminal done.
func TestEventStream(t *testing.T) {
	ts := newServer(t, server.Config{})
	sub := submit(t, ts, testRequest())
	fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.csv") // wait for completion

	resp, err := http.Get(ts.URL + "/sweeps/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	cells := 0
	sawDone := false
	for sc.Scan() {
		var ev protocol.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "cell":
			cells++
			if !protocol.ValidKey(ev.Key) || ev.Source == "" || ev.Result == nil {
				t.Fatalf("bad cell event %+v", ev)
			}
		case "done":
			sawDone = true
			if ev.Cells != 4 || ev.Runs != 8 {
				t.Fatalf("done event %+v", ev)
			}
		default:
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	if cells != 4 || !sawDone {
		t.Fatalf("stream had %d cell events, done=%v", cells, sawDone)
	}
}

// TestAdmissionControl: beyond MaxSweeps in-flight sweeps, POST
// /sweeps answers 429 with a Retry-After hint, and the rejection is
// counted.
func TestAdmissionControl(t *testing.T) {
	// MaxSweeps < 0 means zero admitted — deterministic rejection.
	ts := newServer(t, server.Config{MaxSweeps: -1, RetryAfter: 7})
	body, _ := json.Marshal(testRequest())
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %s, want 429", resp.Status)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want 7", got)
	}
	if !strings.Contains(string(msg), "capacity") {
		t.Fatalf("rejection body %q", msg)
	}
	var stats server.Stats
	if err := json.Unmarshal(fetch(t, ts.URL+"/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 1 || stats.Submitted != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestBadRequests: malformed JSON, an unknown algorithm, and an
// unknown sweep id all answer 4xx, not 5xx or a hang.
func TestBadRequests(t *testing.T) {
	ts := newServer(t, server.Config{})
	for name, body := range map[string]string{
		"garbage":   "{not json",
		"bad alg":   `{"algorithms":"bogus"}`,
		"bad axis":  `{"targets":"6;7"}`,
		"conflict":  `{"preset":"paper51","scenario":{"targets":{"count":3}}}`,
		"bad shard": `{"rep_shards":-2}`,
	} {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", name, resp.Status)
		}
	}
	resp, err := http.Get(ts.URL + "/sweeps/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %s, want 404", resp.Status)
	}
}

// TestConcurrentIdenticalSubmissions: N copies of one sweep submitted
// at once collapse to one computation per cell (single-flight), and
// every copy's result is byte-identical.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	ts := newServer(t, server.Config{Store: store, MaxSweeps: n})
	req := testRequest()

	ids := make([]string, n)
	for i := range ids {
		ids[i] = submit(t, ts, req).ID
	}
	results := make([][]byte, n)
	for i, id := range ids {
		results[i] = fetch(t, ts.URL+"/sweeps/"+id+"/result.csv")
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("submission %d returned different bytes", i)
		}
	}
	// Exactly one compute per cell across all n sweeps; the remaining
	// resolutions were hits or joins.
	st := store.Stats()
	if st.Misses != 4 {
		t.Fatalf("%d cells computed, want 4 (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Joins != 4*(n-1) {
		t.Fatalf("hits %d + joins %d, want %d", st.Hits, st.Joins, 4*(n-1))
	}
}

// TestRepShardsCellsDisjoint: rep_shards is part of the cell identity,
// so a sharded-fold sweep does not reuse (or poison) the sequential
// fold's cached cells.
func TestRepShardsCellsDisjoint(t *testing.T) {
	store, err := cache.New(cache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newServer(t, server.Config{Store: store})
	req := testRequest()
	sub := submit(t, ts, req)
	fetch(t, ts.URL+"/sweeps/"+sub.ID+"/result.csv")

	req.RepShards = 2
	sub2 := submit(t, ts, req)
	fetch(t, ts.URL+"/sweeps/"+sub2.ID+"/result.csv")
	var st protocol.SweepStatus
	if err := json.Unmarshal(fetch(t, ts.URL+"/sweeps/"+sub2.ID), &st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 || st.Computed != 4 {
		t.Fatalf("sharded-fold sweep reused sequential cells: %+v", st)
	}
}
