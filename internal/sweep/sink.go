package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// Sink receives a sweep's results as they finish. Begin is called once
// before execution with the defaults-applied spec and the number of
// cells that will run; Cell is called once per executed cell, in
// enumeration order; End is called once after the last cell with the
// full result (including skipped cells). A sink error aborts the
// sweep.
type Sink interface {
	Begin(spec *Spec, cells int) error
	Cell(c *CellResult) error
	End(r *Result) error
}

// pointHeader is the fixed axis-column schema shared by the CSV sink.
var pointHeader = []string{
	"algorithm", "targets", "mules", "speed", "fleet", "placement",
	"horizon", "battery", "vips", "vip_weight", "workload", "partition",
	"failure",
}

func pointRecord(p Point) []string {
	return []string{
		p.Algorithm,
		strconv.Itoa(p.Targets),
		strconv.Itoa(p.Mules),
		strconv.FormatFloat(p.Speed, 'g', -1, 64),
		p.Fleet,
		p.Placement.String(),
		strconv.FormatFloat(p.Horizon, 'g', -1, 64),
		strconv.FormatBool(p.Battery),
		strconv.Itoa(p.VIPs),
		strconv.Itoa(p.VIPWeight),
		p.Workload,
		p.Partition,
		p.Failure,
	}
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// csvSink writes one long-form CSV row per cell: the full axis point
// followed by mean and CI95 columns for every scalar metric and the
// elementwise means of every vector metric.
type csvSink struct {
	w    *csv.Writer
	spec *Spec
}

// CSV returns a Sink emitting machine-readable CSV to w.
func CSV(w io.Writer) Sink { return &csvSink{w: csv.NewWriter(w)} }

func (s *csvSink) Begin(spec *Spec, cells int) error {
	s.spec = spec
	header := append([]string{}, pointHeader...)
	// reps is the actual replication count folded into the row — Seeds
	// everywhere unless adaptive early stopping cut a cell short.
	header = append(header, "reps")
	for _, m := range spec.Metrics {
		header = append(header, m.Name, m.Name+"_ci95")
	}
	for _, vm := range spec.Vectors {
		for k := 0; k < vm.Len; k++ {
			header = append(header, fmt.Sprintf("%s_%d", vm.Name, k+1))
		}
	}
	return s.w.Write(header)
}

func (s *csvSink) Cell(c *CellResult) error {
	rec := pointRecord(c.Point)
	rec = append(rec, strconv.Itoa(c.Reps))
	for _, m := range c.Metrics {
		rec = append(rec, fmtF(m.Mean), fmtF(m.CI95))
	}
	for i, vm := range s.spec.Vectors {
		vs := c.Vectors[i]
		for k := 0; k < vm.Len; k++ {
			if k < len(vs.Mean) {
				rec = append(rec, fmtF(vs.Mean[k]))
			} else {
				rec = append(rec, "")
			}
		}
	}
	return s.w.Write(rec)
}

func (s *csvSink) End(*Result) error {
	s.w.Flush()
	return s.w.Error()
}

// jsonlSink writes one JSON object per line: a sweep header, then one
// object per cell, then a summary object carrying the skipped cells.
type jsonlSink struct {
	enc *json.Encoder
}

// JSONL returns a Sink emitting JSON-lines to w.
func JSONL(w io.Writer) Sink { return &jsonlSink{enc: json.NewEncoder(w)} }

func (s *jsonlSink) Begin(spec *Spec, cells int) error {
	return s.enc.Encode(struct {
		Sweep    string `json:"sweep"`
		Seeds    int    `json:"seeds"`
		BaseSeed uint64 `json:"base_seed"`
		Cells    int    `json:"cells"`
	}{spec.Name, spec.Seeds, spec.BaseSeed, cells})
}

func (s *jsonlSink) Cell(c *CellResult) error { return s.enc.Encode(c) }

func (s *jsonlSink) End(r *Result) error {
	type summary struct {
		Cells   int           `json:"cells"`
		Runs    int           `json:"runs"`
		Skipped []SkippedCell `json:"skipped,omitempty"`
		Stopped []StoppedCell `json:"stopped,omitempty"`
	}
	return s.enc.Encode(struct {
		Summary summary `json:"summary"`
	}{summary{len(r.Cells), r.Runs, r.Skipped, r.Stopped}})
}

// textSink renders an aligned table for terminals: only the axes that
// actually vary become columns, each metric shows mean ±CI95, and the
// run summary (including skipped cells) lands in a footer.
type textSink struct {
	out  io.Writer
	tw   *tabwriter.Writer
	cols []pointColumn
}

type pointColumn struct {
	name string
	get  func(Point) string
}

// TextTable returns a Sink rendering an aligned text table to w.
func TextTable(w io.Writer) Sink { return &textSink{out: w} }

func (s *textSink) Begin(spec *Spec, cells int) error {
	s.cols = nil
	add := func(vary bool, name string, get func(Point) string) {
		if vary {
			s.cols = append(s.cols, pointColumn{name, get})
		}
	}
	add(len(spec.Algorithms) > 1, "algorithm", func(p Point) string { return p.Algorithm })
	add(len(spec.Targets) > 1, "targets", func(p Point) string { return strconv.Itoa(p.Targets) })
	add(len(spec.Mules) > 1, "mules", func(p Point) string { return strconv.Itoa(p.Mules) })
	add(len(spec.Speeds) > 1, "speed", func(p Point) string {
		return strconv.FormatFloat(p.Speed, 'g', -1, 64)
	})
	add(len(spec.Fleets) > 1, "fleet", func(p Point) string { return p.Fleet })
	add(len(spec.Placements) > 1, "placement", func(p Point) string { return p.Placement.String() })
	add(len(spec.Horizons) > 1, "horizon", func(p Point) string {
		return strconv.FormatFloat(p.Horizon, 'g', -1, 64)
	})
	add(len(spec.Battery) > 1, "battery", func(p Point) string { return strconv.FormatBool(p.Battery) })
	add(len(spec.VIPs) > 1, "vips", func(p Point) string { return strconv.Itoa(p.VIPs) })
	add(len(spec.VIPWeights) > 1, "vip_weight", func(p Point) string { return strconv.Itoa(p.VIPWeight) })
	add(len(spec.Workloads) > 1, "workload", func(p Point) string {
		if p.Workload == "" {
			return "none"
		}
		return p.Workload
	})
	add(len(spec.Partitions) > 1, "partition", func(p Point) string {
		if p.Partition == "" {
			return "none"
		}
		return p.Partition
	})
	add(len(spec.Failures) > 1, "failure", func(p Point) string {
		if p.Failure == "" {
			return "none"
		}
		return p.Failure
	})
	if len(s.cols) == 0 {
		add(true, "algorithm", func(p Point) string { return p.Algorithm })
	}

	title := spec.Name
	if title == "" {
		title = "sweep"
	}
	if _, err := fmt.Fprintf(s.out, "== %s (%d cells × %d replications) ==\n",
		title, cells, spec.Seeds); err != nil {
		return err
	}
	s.tw = tabwriter.NewWriter(s.out, 2, 4, 2, ' ', 0)
	header := ""
	for i, c := range s.cols {
		if i > 0 {
			header += "\t"
		}
		header += c.name
	}
	for _, m := range spec.Metrics {
		header += "\t" + m.Name
	}
	for _, vm := range spec.Vectors {
		header += "\t" + vm.Name + "[...]"
	}
	_, err := fmt.Fprintln(s.tw, header)
	return err
}

func (s *textSink) Cell(c *CellResult) error {
	row := ""
	for i, col := range s.cols {
		if i > 0 {
			row += "\t"
		}
		row += col.get(c.Point)
	}
	for _, m := range c.Metrics {
		row += fmt.Sprintf("\t%.2f ±%.2f", m.Mean, m.CI95)
	}
	for _, v := range c.Vectors {
		row += fmt.Sprintf("\t(%d pts)", len(v.Mean))
	}
	_, err := fmt.Fprintln(s.tw, row)
	return err
}

func (s *textSink) End(r *Result) error {
	if err := s.tw.Flush(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.out, "%d cells, %d runs, %d skipped\n",
		len(r.Cells), r.Runs, len(r.Skipped)); err != nil {
		return err
	}
	for _, sk := range r.Skipped {
		if _, err := fmt.Fprintf(s.out, "skipped: %v (%s)\n", sk.Point, sk.Reason); err != nil {
			return err
		}
	}
	for _, st := range r.Stopped {
		if _, err := fmt.Fprintf(s.out, "stopped early: %v after %d reps (%s)\n",
			st.Point, st.Reps, st.Reason); err != nil {
			return err
		}
	}
	return nil
}
