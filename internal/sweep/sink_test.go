package sweep

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"tctp/internal/core"
	"tctp/internal/patrol"
)

func sinkSpec() Spec {
	s := tinySpec()
	s.Mules = []int{2, 12}
	s.Skip = func(p Point) string {
		if p.Mules > p.Targets+1 {
			return "more mules than targets+1"
		}
		return ""
	}
	return s
}

func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run(context.Background(), sinkSpec(), CSV(&buf)); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+4 { // header + 4 executed cells (skipped cells emit nothing)
		t.Fatalf("%d rows", len(rows))
	}
	header := rows[0]
	wantCols := len(pointHeader) + 1 + 2*3 // reps + 3 metrics × (mean, ci95)
	if len(header) != wantCols {
		t.Fatalf("header %v has %d columns, want %d", header, len(header), wantCols)
	}
	if header[0] != "algorithm" || header[len(pointHeader)] != "reps" ||
		header[len(pointHeader)+1] != "avg_dcdt_s" ||
		header[len(pointHeader)+2] != "avg_dcdt_s_ci95" {
		t.Fatalf("header %v", header)
	}
	if rows[1][0] != "btctp" || rows[1][1] != "6" || rows[1][2] != "2" {
		t.Fatalf("first cell row %v", rows[1])
	}
	// The reps column reports the actual replication count.
	if rows[1][len(pointHeader)] != "3" {
		t.Fatalf("reps column = %q, want 3", rows[1][len(pointHeader)])
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run(context.Background(), sinkSpec(), JSONL(&buf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+4+1 { // header + cells + summary
		t.Fatalf("%d lines", len(lines))
	}
	var head struct {
		Sweep string `json:"sweep"`
		Cells int    `json:"cells"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatal(err)
	}
	if head.Sweep != "tiny" || head.Cells != 4 {
		t.Fatalf("header %+v", head)
	}
	var cell CellResult
	if err := json.Unmarshal([]byte(lines[1]), &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Point.Algorithm != "btctp" || cell.Point.Placement.String() != "uniform" {
		t.Fatalf("cell point %+v", cell.Point)
	}
	if len(cell.Metrics) != 3 || cell.Metrics[0].N != 3 {
		t.Fatalf("cell metrics %+v", cell.Metrics)
	}
	var tail struct {
		Summary struct {
			Cells   int           `json:"cells"`
			Runs    int           `json:"runs"`
			Skipped []SkippedCell `json:"skipped"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
		t.Fatal(err)
	}
	if tail.Summary.Cells != 4 || tail.Summary.Runs != 12 || len(tail.Summary.Skipped) != 4 {
		t.Fatalf("summary %+v", tail.Summary)
	}
	for _, sk := range tail.Summary.Skipped {
		if sk.Reason == "" || sk.Point.Mules != 12 {
			t.Fatalf("skipped %+v", sk)
		}
	}
}

func TestTextTableSink(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Run(context.Background(), sinkSpec(), TextTable(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"== tiny (4 cells × 3 replications) ==",
		"algorithm", "targets", "mules", // the varying axes
		"avg_dcdt_s", "±",
		"4 cells, 12 runs, 4 skipped",
		"skipped: alg=btctp targets=6 mules=12",
		"more mules than targets+1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Non-varying axes stay out of the table header (the skip footer
	// legitimately prints full points).
	header := strings.Split(out, "\n")[1]
	if strings.Contains(header, "placement") || strings.Contains(header, "battery") {
		t.Fatalf("constant axes leaked into the header %q", header)
	}
}

func TestTextTableSingleCell(t *testing.T) {
	var buf bytes.Buffer
	spec := Spec{
		Algorithms: []Variant{Algo("btctp", patrol.Planned(&core.BTCTP{}))},
		Targets:    []int{5},
		Mules:      []int{2},
		Horizons:   []float64{3_000},
		Metrics:    []Metric{AvgSD()},
		Seeds:      1,
	}
	if _, err := Run(context.Background(), spec, TextTable(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "btctp") {
		t.Fatalf("single-cell table lost its identity column:\n%s", buf.String())
	}
}

// failSink errors on demand at each stage of the sink protocol.
type failSink struct {
	beginErr, endErr error
	cellErrAt        int // fail on the cell with this index (-1: never)
	cells            int
}

func (f *failSink) Begin(*Spec, int) error { return f.beginErr }
func (f *failSink) Cell(c *CellResult) error {
	f.cells++
	if c.Index == f.cellErrAt {
		return fmt.Errorf("disk full")
	}
	return nil
}
func (f *failSink) End(*Result) error { return f.endErr }

func TestSinkBeginError(t *testing.T) {
	executed := atomic.Int64{}
	spec := countingSpec(&executed)
	_, err := Run(context.Background(), spec, &failSink{beginErr: fmt.Errorf("no header"), cellErrAt: -1})
	if err == nil || !strings.Contains(err.Error(), "sink begin") {
		t.Fatalf("err = %v", err)
	}
	if executed.Load() != 0 {
		t.Fatalf("%d replications ran despite a failed sink Begin", executed.Load())
	}
}

// countingSpec is a wide, slow-enough sweep for abort-promptness
// checks: 2 cells × 60 replications, counting executions.
func countingSpec(n *atomic.Int64) Spec {
	s := tinySpec()
	s.Targets = []int{6}
	s.Seeds = 60
	s.Metrics = append(s.Metrics, Metric{Name: "count", Fn: func(Env) float64 {
		n.Add(1)
		return 0
	}})
	return s
}

// A sink whose Write fails mid-sweep must abort the worker pool
// promptly — well before the remaining replications execute — and
// surface the error.
func TestSinkCellErrorAbortsPromptly(t *testing.T) {
	executed := atomic.Int64{}
	spec := countingSpec(&executed)
	spec.Workers = 2
	_, err := Run(context.Background(), spec, &failSink{cellErrAt: 0})
	if err == nil || !strings.Contains(err.Error(), "sink cell 0") ||
		!strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
	total := int64(2 * 60)
	if n := executed.Load(); n >= total {
		t.Fatalf("all %d replications ran despite the sink failing after cell 0", n)
	}
}

func TestSinkEndError(t *testing.T) {
	spec := tinySpec()
	_, err := Run(context.Background(), spec, &failSink{cellErrAt: -1, endErr: fmt.Errorf("flush failed")})
	if err == nil || !strings.Contains(err.Error(), "sink end") {
		t.Fatalf("err = %v", err)
	}
}

// A failing sink also aborts a checkpointed run — and the checkpoint
// written up to the failure stays resumable once the sink is fixed.
func TestSinkErrorLeavesResumableCheckpoint(t *testing.T) {
	spec := tinySpec()
	spec.Seeds = 4
	var want bytes.Buffer
	if _, err := Run(context.Background(), spec, CSV(&want)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := RunCheckpointed(context.Background(), spec, path, &failSink{cellErrAt: 1}); err == nil {
		t.Fatal("failing sink accepted")
	}
	var got bytes.Buffer
	if _, err := Resume(context.Background(), spec, path, CSV(&got)); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("resume after sink failure diverged:\n%s\nvs\n%s", got.String(), want.String())
	}
}
