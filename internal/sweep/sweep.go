// Package sweep is a declarative, deterministic, fully parallel
// grid-execution engine: the substrate behind every parameter sweep in
// this repository (cmd/tctp-sweep, the figure runners and ablations in
// internal/experiment).
//
// A Spec declares parameter axes — algorithm variants, target counts,
// fleet sizes, mule speeds, heterogeneous fleets, placements,
// horizons, battery on/off, VIP populations, data workloads — whose
// cartesian product yields cells. Run executes
// cells × replications through one bounded worker pool, so a sweep
// saturates the machine even when each cell has few replications.
// Each metric is aggregated with streaming Welford statistics
// (mean/variance/CI95/min/max); no per-seed slices are held in memory.
// Results flow through the Sink interface (CSV, JSON-lines, aligned
// text table).
//
// # Determinism
//
// Replication r of every cell derives all randomness from the seed
// BaseSeed+r via two independent SplitMix64 streams: ScenarioSource
// feeds scenario generation, AlgorithmSource feeds algorithm
// randomness. Per-cell aggregation folds replications in seed order
// (out-of-order arrivals are buffered until their predecessors land),
// and cells are emitted to sinks in declaration order, so the output
// is bit-identical regardless of worker count.
//
// # Distributed execution
//
// Run, RunCheckpointed and Resume are thin wrappers over the
// composable job API — Plan, Job.Shard, Job.Run, Merge (see job.go) —
// which splits a sweep into deterministic cell ranges across machines
// and merges their checkpoint files back into byte-identical output.
package sweep

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/stats"
	"tctp/internal/wsn"
	"tctp/internal/xrand"
)

// Point is one cell's full parameter assignment: the value picked from
// every axis of the Spec.
type Point struct {
	Algorithm string `json:"algorithm"`
	Targets   int    `json:"targets"`
	// Mules is the fleet size; with a Fleets axis it is the size of
	// the cell's fleet.
	Mules int `json:"mules"`
	// Speed is the common mule speed; 0 when the cell's fleet mixes
	// speeds (see Fleet).
	Speed float64 `json:"speed"`
	// Fleet names the cell's fleet on the Fleets axis; empty when the
	// fleet comes from the Mules × Speeds axes.
	Fleet     string          `json:"fleet,omitempty"`
	Placement field.Placement `json:"placement"`
	Horizon   float64         `json:"horizon"`
	Battery   bool            `json:"battery"`
	VIPs      int             `json:"vips"`
	VIPWeight int             `json:"vip_weight"`
	// Workload names the cell's data workload; empty means none.
	Workload string `json:"workload,omitempty"`
	// Partition names the cell's target partition on the Partitions
	// axis (canonical "method:k[:alloc]" form); empty means the
	// algorithm's own single-circuit planning.
	Partition string `json:"partition,omitempty"`
	// Failure names the cell's failure injection on the Failures axis
	// (canonical "rate[:handoff]" form); empty means the static world.
	// omitempty keeps the fingerprints and cache keys of pre-failure
	// specs byte-stable.
	Failure string `json:"failure,omitempty"`
}

// String renders the point compactly for skip reports and errors.
func (p Point) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "alg=%s targets=%d mules=%d", p.Algorithm, p.Targets, p.Mules)
	if p.Fleet != "" {
		fmt.Fprintf(&sb, " fleet=%s", p.Fleet)
	} else {
		fmt.Fprintf(&sb, " speed=%g", p.Speed)
	}
	fmt.Fprintf(&sb, " placement=%s horizon=%g", p.Placement, p.Horizon)
	if p.Battery {
		sb.WriteString(" battery=on")
	}
	if p.VIPs > 0 {
		fmt.Fprintf(&sb, " vips=%d w=%d", p.VIPs, p.VIPWeight)
	}
	if p.Workload != "" {
		fmt.Fprintf(&sb, " workload=%s", p.Workload)
	}
	if p.Partition != "" {
		fmt.Fprintf(&sb, " partition=%s", p.Partition)
	}
	if p.Failure != "" {
		fmt.Fprintf(&sb, " failure=%s", p.Failure)
	}
	return sb.String()
}

// Partition is one value of the Partitions axis: a target partition
// the cell's planner is run under. The zero Partition (empty method)
// means "no partitioning" — the algorithm plans its usual
// single-circuit form — and is the axis's single default value.
// Enabled partitions wrap the cell's planner in its partitioned
// variant (B-TCTP → C-BTCTP, W-TCTP → C-WTCTP) via
// patrol.Partitioned; algorithms without one fail the cell, so sweeps
// mixing such algorithms should Skip those cells.
type Partition struct {
	// Method is the partitioner: "kmeans" or "sectors".
	Method string `json:"method,omitempty"`
	// K is the region count (independent of the fleet size, but the
	// fleet must carry at least one mule per region).
	K int `json:"k,omitempty"`
	// Alloc is the mule-allocation policy: "length" (default —
	// proportional to region tour length) or "count".
	Alloc string `json:"alloc,omitempty"`
}

// Enabled reports whether the partition is real.
func (p Partition) Enabled() bool { return p.Method != "" }

// String renders the canonical "method:k[:alloc]" form ("none" for
// the zero value) — the value of the Point.Partition coordinate.
func (p Partition) String() string {
	if !p.Enabled() {
		return "none"
	}
	s := p.Method + ":" + strconv.Itoa(p.K)
	if p.Alloc != "" && p.Alloc != "length" {
		s += ":" + p.Alloc
	}
	return s
}

// name is the Point coordinate: empty for the zero partition.
func (p Partition) name() string {
	if !p.Enabled() {
		return ""
	}
	return p.String()
}

// Config translates the axis value to the planner-level
// configuration.
func (p Partition) Config() (core.PartitionConfig, error) {
	var cfg core.PartitionConfig
	m, err := core.ParsePartitionMethod(p.Method)
	if err != nil {
		return cfg, err
	}
	alloc := core.AllocByLength
	if p.Alloc != "" {
		if alloc, err = core.ParseAllocPolicy(p.Alloc); err != nil {
			return cfg, err
		}
	}
	if p.K < 1 {
		return cfg, fmt.Errorf("sweep: partition %s needs k >= 1", p)
	}
	cfg.Method, cfg.K, cfg.Alloc = m, p.K, alloc
	return cfg, nil
}

// ParsePartition parses "method:k[:alloc]" ("none" or "" yields the
// zero partition).
func ParsePartition(s string) (Partition, error) {
	if s == "" || s == "none" {
		return Partition{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Partition{}, fmt.Errorf("sweep: bad partition %q (want method:k[:alloc], e.g. kmeans:4)", s)
	}
	p := Partition{Method: parts[0]}
	k, err := strconv.Atoi(parts[1])
	if err != nil || k < 1 {
		return Partition{}, fmt.Errorf("sweep: bad partition region count %q", parts[1])
	}
	p.K = k
	if len(parts) == 3 {
		p.Alloc = parts[2]
	}
	if _, err := p.Config(); err != nil {
		return Partition{}, err
	}
	return p, nil
}

// Failure is one value of the Failures axis: a seeded failure
// injection the cell's fleet is subjected to. The zero Failure (rate
// 0) means the static world and is the axis's single default value.
// Enabled failures derive each replication's kill schedule from the
// dedicated failure stream (FailureSource): every mule independently
// dies with probability Rate at a uniform time before the horizon, and
// the fleet answers with the Handoff policy.
type Failure struct {
	// Rate is the per-mule failure probability over the horizon, in
	// [0, 1].
	Rate float64 `json:"rate,omitempty"`
	// Handoff is the replan policy: "" or "none" leaves the surviving
	// routes untouched, "absorb" swaps in a replanned fleet plan at
	// each failure (patrol.HandoffAbsorb).
	Handoff string `json:"handoff,omitempty"`
}

// Enabled reports whether the failure injection is real.
func (f Failure) Enabled() bool { return f.Rate > 0 }

// String renders the canonical "rate[:handoff]" form ("none" for the
// zero value) — the value of the Point.Failure coordinate.
func (f Failure) String() string {
	if !f.Enabled() {
		return "none"
	}
	s := strconv.FormatFloat(f.Rate, 'g', -1, 64)
	if f.Handoff != "" && f.Handoff != "none" {
		s += ":" + f.Handoff
	}
	return s
}

// name is the Point coordinate: empty for the zero failure.
func (f Failure) name() string {
	if !f.Enabled() {
		return ""
	}
	return f.String()
}

// Policy translates the axis value to the patrol-level handoff.
func (f Failure) Policy() (patrol.Handoff, error) {
	return patrol.ParseHandoff(f.Handoff)
}

// ParseFailure parses "rate[:handoff]" ("none" or "" yields the zero
// failure), e.g. "0.25" or "0.25:absorb".
func ParseFailure(s string) (Failure, error) {
	if s == "" || s == "none" {
		return Failure{}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) > 2 {
		return Failure{}, fmt.Errorf("sweep: bad failure %q (want rate[:handoff], e.g. 0.25:absorb)", s)
	}
	rate, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || rate < 0 || rate > 1 {
		return Failure{}, fmt.Errorf("sweep: bad failure rate %q (want a probability in [0,1])", parts[0])
	}
	f := Failure{Rate: rate}
	if len(parts) == 2 {
		f.Handoff = parts[1]
	}
	if _, err := f.Policy(); err != nil {
		return Failure{}, err
	}
	return f, nil
}

// Variant is one value of the algorithm axis: a named constructor for
// the algorithm under test. Make receives the replication's
// AlgorithmSource so constructions that embed randomness (e.g. the
// random break-edge policy) stay deterministic per seed.
type Variant struct {
	Name string
	// Tag is a free-form scalar the variant can carry for its metric
	// functions (e.g. the dwell time of a dwell-sensitivity variant).
	Tag float64
	// Make builds the algorithm for one replication.
	Make func(src *xrand.Source) patrol.Algorithm
	// Options, when non-nil, adjusts the per-run simulation options
	// after the Spec-level Options hook.
	Options func(o *patrol.Options)
}

// Algo wraps a fixed, seed-independent algorithm as a Variant. The
// algorithm must be safe for concurrent Run calls (all planners in
// this repository are).
func Algo(name string, alg patrol.Algorithm) Variant {
	return Variant{Name: name, Make: func(*xrand.Source) patrol.Algorithm { return alg }}
}

// Env is what a metric function sees: one finished replication of one
// cell.
type Env struct {
	Point    Point
	Variant  Variant
	Seed     uint64
	Scenario *field.Scenario
	Result   *patrol.Result
	// Fleet is the cell's materialized fleet configuration (the
	// Fleets-axis fleet, or the homogeneous fleet implied by the
	// point's Mules × Speed), giving metrics per-mule speeds that
	// patrol.Result does not carry.
	Fleet scenario.Fleet
	// Data is the cell's data-workload overlay with the replication's
	// delivery statistics: the Workloads-axis overlay when the cell's
	// workload is enabled, else the first scenario-declared overlay,
	// else nil.
	Data *wsn.Network
}

// Warm returns the conventional warm-up cutoff for steady-state
// metrics: just after the synchronized patrol start.
func (e Env) Warm() float64 { return e.Result.PatrolStart + 1 }

// MuleSpeed returns mule i's speed: the fleet member's speed when the
// cell declares one, else the point's homogeneous speed, else the
// patrol default of 2 m/s.
func (e Env) MuleSpeed(i int) float64 {
	if i >= 0 && i < e.Fleet.Size() && e.Fleet.Mules[i].Speed > 0 {
		return e.Fleet.Mules[i].Speed
	}
	if e.Point.Speed > 0 {
		return e.Point.Speed
	}
	return 2
}

// Metric is a named scalar extracted from every replication and
// aggregated per cell.
type Metric struct {
	Name string
	Fn   func(Env) float64
}

// VectorMetric is a named fixed-capacity vector extracted from every
// replication and aggregated elementwise per cell. Fn may return fewer
// than Len elements (e.g. a run with fewer visits); each position
// aggregates the replications that reach it.
type VectorMetric struct {
	Name string
	Len  int
	Fn   func(Env) []float64
}

// Adaptive configures per-cell early stopping: a cell stops
// replicating once the watched scalar metric's CI95 half-width shrinks
// to RelCI times the magnitude of its running mean (a zero-variance
// cell therefore stops at MinReps). Replications still fold strictly
// in seed order, so the stopping replication count of every cell is a
// deterministic function of the spec alone — independent of worker
// count and of checkpoint/resume boundaries.
type Adaptive struct {
	// Metric names the watched scalar metric; it must appear in
	// Spec.Metrics.
	Metric string
	// RelCI is the relative CI95 target (e.g. 0.05 stops a cell once
	// the half-width is within 5% of the mean's magnitude).
	RelCI float64
	// MinReps is the floor before stopping is considered (default 5,
	// minimum 2 — a single replication has no variance estimate).
	MinReps int
	// MaxReps caps the replications per cell (default Spec.Seeds).
	MaxReps int
}

func (a *Adaptive) withDefaults(seeds int) *Adaptive {
	d := *a
	if d.MaxReps == 0 {
		d.MaxReps = seeds
	}
	if d.MinReps == 0 {
		// Only the defaulted floor is clamped to the cap; an explicit
		// MinReps > MaxReps is a validation error, not a silent clamp.
		d.MinReps = 5
		if d.MinReps > d.MaxReps {
			d.MinReps = d.MaxReps
		}
	}
	return &d
}

// converged reports whether the watched accumulator satisfies the
// relative CI95 target.
func (a *Adaptive) converged(acc *stats.Accumulator) bool {
	return acc.CI95() <= a.RelCI*math.Abs(acc.Mean())
}

// Spec declares a sweep: the axes, the metrics, the protocol, and
// optional hooks. The zero value of every axis means "the single
// default value", so a Spec only spells out what it sweeps.
type Spec struct {
	// Name labels the sweep in sink output.
	Name string

	// Axes. The cartesian product of all axes yields the cells,
	// enumerated with Algorithms outermost and Workloads innermost.
	Algorithms []Variant // required: at least one variant
	Targets    []int     // default {20}
	Mules      []int     // default {4}
	Speeds     []float64 // default {2} (m/s, §5.1)
	// Fleets, when non-empty, replaces the Mules × Speeds axes with
	// named (possibly heterogeneous) fleets; Mules and Speeds must
	// then stay empty.
	Fleets     []scenario.Fleet
	Placements []field.Placement // default {field.Uniform}
	Horizons   []float64         // default {100_000} (s)
	Battery    []bool            // default {false}
	VIPs       []int             // default {0} (no VIPs)
	VIPWeights []int             // default {2}; ignored while VIPs is 0
	// Workloads is the data-workload axis; the zero Workload (empty
	// name) means "no workload" and is the single default value.
	Workloads []scenario.Workload
	// Partitions is the target-partition axis (partitioner × k ×
	// allocation policy); the zero Partition means "no partitioning"
	// and is the single default value.
	Partitions []Partition
	// Failures is the failure-injection axis (rate × handoff policy);
	// the zero Failure means the static world and is the single
	// default value.
	Failures []Failure

	// Metrics and Vectors are extracted from every replication; at
	// least one of the two must be non-empty.
	Metrics []Metric
	Vectors []VectorMetric

	// Seeds is the number of replications per cell (default 20, the
	// paper's protocol). With Adaptive set it is the default MaxReps.
	Seeds int
	// Adaptive, when non-nil, enables per-cell early stopping; cells
	// then run between Adaptive.MinReps and Adaptive.MaxReps
	// replications instead of exactly Seeds.
	Adaptive *Adaptive
	// ConfigDigest is extra identity folded into the checkpoint
	// fingerprint. Hooks (Configure, Options, Scenario) cannot be
	// hashed, so a caller whose hooks close over external configuration
	// — a preset's field geometry, a scenario file — must serialize
	// that configuration here, or Resume would accept a checkpoint
	// written under different hook behavior.
	ConfigDigest string
	// BaseSeed offsets the replication seeds.
	BaseSeed uint64
	// Workers bounds the worker pool (default GOMAXPROCS). The pool is
	// shared by all cells: cells and replications run concurrently.
	Workers int
	// RepShards, when > 1, splits every cell's replications into that
	// many contiguous seed-range shards whose folds proceed
	// independently — an out-of-order replication parks only within
	// its own shard, so one straggling replication no longer stalls
	// the fold (and the checkpoint-free memory high-water mark) of the
	// whole cell — and whose accumulators are combined in ascending
	// shard order through the order-invariant stats.Accumulator.Merge
	// when the cell completes. 0 or 1 keeps the classic strictly
	// seed-ordered single fold. Output depends only on RepShards,
	// never on the worker count: at a fixed RepShards the result is
	// byte-identical at any Workers value. A sharded fold is NOT
	// bit-identical to the unsharded fold of the same cell (the
	// parallel-Welford merge rounds differently from a sequential
	// fold), which is why the knob is explicit rather than implied by
	// Workers. Incompatible with Adaptive (the stopping rule consumes
	// the strict seed-order prefix) and with checkpointing (the
	// checkpoint format records a single fold frontier per cell).
	RepShards int

	// Skip, when non-nil, is consulted per cell; a non-empty reason
	// excludes the cell from execution and records it in the Result.
	Skip func(p Point) (reason string)
	// Configure, when non-nil, adjusts the declarative scenario
	// derived from the point before it is materialized — field
	// geometry, cluster parameters, recharge station, extra
	// workloads. It is not invoked when Scenario replaces
	// materialization outright.
	Configure func(p Point, sc *scenario.Scenario)
	// Options, when non-nil, adjusts the patrol.Options derived from
	// the point (before the Variant's own Options hook). Appending to
	// o.Observers attaches extra per-replication observers.
	Options func(p Point, o *patrol.Options)
	// Scenario, when non-nil, replaces the default generator entirely.
	Scenario func(p Point, src *xrand.Source) *field.Scenario
	// Progress, when non-nil, is called after every completed
	// replication and cell. It runs under the engine lock: keep it
	// fast and do not call back into the engine.
	Progress func(pr Progress)
}

func (s Spec) withDefaults() Spec {
	if len(s.Targets) == 0 {
		s.Targets = []int{20}
	}
	if len(s.Fleets) == 0 {
		if len(s.Mules) == 0 {
			s.Mules = []int{4}
		}
		if len(s.Speeds) == 0 {
			s.Speeds = []float64{2}
		}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []scenario.Workload{{}}
	}
	if len(s.Partitions) == 0 {
		s.Partitions = []Partition{{}}
	}
	if len(s.Failures) == 0 {
		s.Failures = []Failure{{}}
	}
	if len(s.Placements) == 0 {
		s.Placements = []field.Placement{field.Uniform}
	}
	if len(s.Horizons) == 0 {
		s.Horizons = []float64{100_000}
	}
	if len(s.Battery) == 0 {
		s.Battery = []bool{false}
	}
	if len(s.VIPs) == 0 {
		s.VIPs = []int{0}
	}
	if len(s.VIPWeights) == 0 {
		s.VIPWeights = []int{2}
	}
	if s.Seeds == 0 {
		s.Seeds = 20
	}
	if s.Workers == 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.Adaptive != nil {
		s.Adaptive = s.Adaptive.withDefaults(s.Seeds)
	}
	return s
}

// maxReps is the per-cell replication ceiling: Seeds, or the adaptive
// cap when early stopping is on.
func (s *Spec) maxReps() int {
	if s.Adaptive != nil {
		return s.Adaptive.MaxReps
	}
	return s.Seeds
}

func (s *Spec) validate() error {
	if len(s.Algorithms) == 0 {
		return fmt.Errorf("sweep: spec %q has no algorithm variants", s.Name)
	}
	for i, v := range s.Algorithms {
		if v.Name == "" {
			return fmt.Errorf("sweep: spec %q: variant %d has no name", s.Name, i)
		}
		if v.Make == nil {
			return fmt.Errorf("sweep: spec %q: variant %q has no Make", s.Name, v.Name)
		}
	}
	if len(s.Metrics)+len(s.Vectors) == 0 {
		return fmt.Errorf("sweep: spec %q declares no metrics", s.Name)
	}
	for _, vm := range s.Vectors {
		if vm.Len <= 0 {
			return fmt.Errorf("sweep: spec %q: vector metric %q has length %d",
				s.Name, vm.Name, vm.Len)
		}
	}
	if s.Seeds < 1 {
		return fmt.Errorf("sweep: spec %q has %d replications", s.Name, s.Seeds)
	}
	if a := s.Adaptive; a != nil {
		if a.RelCI <= 0 {
			return fmt.Errorf("sweep: spec %q: adaptive RelCI %g must be positive", s.Name, a.RelCI)
		}
		if a.MinReps < 2 {
			return fmt.Errorf("sweep: spec %q: adaptive MinReps %d < 2", s.Name, a.MinReps)
		}
		if a.MaxReps < a.MinReps {
			return fmt.Errorf("sweep: spec %q: adaptive MaxReps %d < MinReps %d",
				s.Name, a.MaxReps, a.MinReps)
		}
		found := false
		for _, m := range s.Metrics {
			if m.Name == a.Metric {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("sweep: spec %q: adaptive metric %q is not a declared scalar metric",
				s.Name, a.Metric)
		}
	}
	if s.Workers < 1 {
		// withDefaults maps 0 to GOMAXPROCS, so only a negative value
		// lands here; without this check Run would spawn no workers
		// and block forever on the jobs channel.
		return fmt.Errorf("sweep: spec %q has %d workers", s.Name, s.Workers)
	}
	if s.RepShards < 0 {
		return fmt.Errorf("sweep: spec %q has %d replication shards", s.Name, s.RepShards)
	}
	if s.RepShards > 1 && s.Adaptive != nil {
		return fmt.Errorf("sweep: spec %q combines RepShards with Adaptive; the stopping rule needs the strict seed-order fold", s.Name)
	}
	for _, n := range s.VIPs {
		if n > 0 {
			for _, w := range s.VIPWeights {
				if w < 2 {
					return fmt.Errorf("sweep: spec %q sweeps %d VIPs with weight %d < 2",
						s.Name, n, w)
				}
			}
			break
		}
	}
	if len(s.Fleets) > 0 {
		if len(s.Mules) > 0 || len(s.Speeds) > 0 {
			return fmt.Errorf("sweep: spec %q mixes the Fleets axis with Mules/Speeds", s.Name)
		}
		names := map[string]bool{}
		for i, f := range s.Fleets {
			if f.Name == "" {
				return fmt.Errorf("sweep: spec %q: fleet %d has no name", s.Name, i)
			}
			if names[f.Name] {
				return fmt.Errorf("sweep: spec %q: duplicate fleet %q", s.Name, f.Name)
			}
			names[f.Name] = true
			if f.Size() == 0 {
				return fmt.Errorf("sweep: spec %q: fleet %q is empty", s.Name, f.Name)
			}
			for _, m := range f.Mules {
				if m.Speed <= 0 {
					return fmt.Errorf("sweep: spec %q: fleet %q has a mule with speed %g",
						s.Name, f.Name, m.Speed)
				}
			}
		}
	}
	wnames := map[string]bool{}
	for _, w := range s.Workloads {
		if wnames[w.Name] {
			return fmt.Errorf("sweep: spec %q: duplicate workload %q on the axis", s.Name, w.Name)
		}
		wnames[w.Name] = true
	}
	pnames := map[string]bool{}
	for _, p := range s.Partitions {
		if pnames[p.name()] {
			return fmt.Errorf("sweep: spec %q: duplicate partition %q on the axis", s.Name, p)
		}
		pnames[p.name()] = true
		if p.Enabled() {
			if _, err := p.Config(); err != nil {
				return fmt.Errorf("sweep: spec %q: %w", s.Name, err)
			}
		}
	}
	fnames := map[string]bool{}
	for _, f := range s.Failures {
		if fnames[f.name()] {
			return fmt.Errorf("sweep: spec %q: duplicate failure %q on the axis", s.Name, f)
		}
		fnames[f.name()] = true
		if f.Rate < 0 || f.Rate > 1 {
			return fmt.Errorf("sweep: spec %q: failure rate %g outside [0,1]", s.Name, f.Rate)
		}
		if _, err := f.Policy(); err != nil {
			return fmt.Errorf("sweep: spec %q: %w", s.Name, err)
		}
	}
	return nil
}

// fleetChoice is one value of the fleet dimension: either a (size,
// speed) pair from the Mules × Speeds cross, or a named fleet from
// the Fleets axis.
type fleetChoice struct {
	name  string
	mules int
	speed float64 // 0 for a mixed-speed fleet
	fleet scenario.Fleet
}

// fleetChoices enumerates the fleet dimension in canonical order.
func (s *Spec) fleetChoices() []fleetChoice {
	if len(s.Fleets) > 0 {
		out := make([]fleetChoice, len(s.Fleets))
		for i, f := range s.Fleets {
			// A fleet of uniform speed reports that speed even when
			// mules carry individual batteries; 0 means mixed speeds.
			out[i] = fleetChoice{name: f.Name, mules: f.Size(), speed: f.CommonSpeed(), fleet: f}
		}
		return out
	}
	out := make([]fleetChoice, 0, len(s.Mules)*len(s.Speeds))
	for _, nm := range s.Mules {
		for _, sp := range s.Speeds {
			out = append(out, fleetChoice{mules: nm, speed: sp})
		}
	}
	return out
}

// cellDef pairs a point with the axis values that cannot ride on the
// (comparable) point itself: the variant, the full fleet, the
// workload, and the partition configuration.
type cellDef struct {
	point     Point
	variant   Variant
	fleet     scenario.Fleet
	workload  scenario.Workload
	partition Partition
	failure   Failure
}

// cells enumerates the cartesian product in canonical order
// (Algorithms outermost, Failures innermost).
func (s *Spec) cells() []cellDef {
	var out []cellDef
	for _, v := range s.Algorithms {
		for _, nt := range s.Targets {
			for _, fc := range s.fleetChoices() {
				for _, pl := range s.Placements {
					for _, h := range s.Horizons {
						for _, b := range s.Battery {
							for _, nv := range s.VIPs {
								for _, w := range s.VIPWeights {
									for _, wl := range s.Workloads {
										for _, pa := range s.Partitions {
											for _, fa := range s.Failures {
												out = append(out, cellDef{
													point: Point{
														Algorithm: v.Name,
														Targets:   nt,
														Mules:     fc.mules,
														Speed:     fc.speed,
														Fleet:     fc.name,
														Placement: pl,
														Horizon:   h,
														Battery:   b,
														VIPs:      nv,
														VIPWeight: w,
														Workload:  wl.Name,
														Partition: pa.name(),
														Failure:   fa.name(),
													},
													variant:   v,
													fleet:     fc.fleet,
													workload:  wl,
													partition: pa,
													failure:   fa,
												})
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Points returns every cell of the sweep (before skipping) in
// canonical enumeration order.
func (s Spec) Points() []Point {
	sp := s.withDefaults()
	defs := sp.cells()
	out := make([]Point, len(defs))
	for i, d := range defs {
		out[i] = d.point
	}
	return out
}

// ScenarioSource derives the scenario-generation stream for a
// replication seed. It is the engine-wide seed-derivation contract,
// shared with internal/experiment: scenario randomness and algorithm
// randomness are independent SplitMix64 streams of the same seed, so
// changing an algorithm's internal randomness never perturbs the
// workload it runs on.
func ScenarioSource(seed uint64) *xrand.Source {
	return xrand.New(seed).Split()
}

// AlgorithmSource derives the algorithm-randomness stream (random
// baseline picks, k-means seeding, random break edges) for a
// replication seed.
func AlgorithmSource(seed uint64) *xrand.Source {
	s := xrand.New(seed)
	s.Split() // skip the scenario stream
	return s.Split()
}

// WorkloadSource derives the workload-randomness stream (burst
// arrival processes) for a replication seed — stream 3 of the seed,
// matching scenario.Scenario.Run's derivation.
func WorkloadSource(seed uint64) *xrand.Source {
	s := xrand.New(seed)
	s.Split() // scenario stream
	s.Split() // algorithm stream
	return s.Split()
}

// PartitionSource derives the partition-randomness stream (k-means
// seeding of the Partitions axis) for a replication seed — stream 4,
// independent of the algorithm's own randomness so enabling a
// partition never perturbs the variant's stream.
func PartitionSource(seed uint64) *xrand.Source {
	s := xrand.New(seed)
	s.Split() // scenario stream
	s.Split() // algorithm stream
	s.Split() // workload stream
	return s.Split()
}

// FailureSource derives the failure-injection stream (the Failures
// axis's kill schedules and scenario-event attrition picks) for a
// replication seed — stream 5, independent of every other stream so
// enabling failure injection never perturbs the world the fleet
// patrols or the algorithm's own randomness.
func FailureSource(seed uint64) *xrand.Source {
	s := xrand.New(seed)
	s.Split() // scenario stream
	s.Split() // algorithm stream
	s.Split() // workload stream
	s.Split() // partition stream
	return s.Split()
}

// cellScenario derives the declarative scenario of a cell: the point's
// axis values translated to the scenario model, then adjusted by the
// Spec's Configure hook. The axis workload is appended after Configure
// so hook-declared workloads keep their positions.
func (s *Spec) cellScenario(d cellDef) *scenario.Scenario {
	p := d.point
	sc := &scenario.Scenario{
		Field:   scenario.Field{Placement: p.Placement},
		Targets: scenario.Targets{Count: p.Targets, VIPs: p.VIPs, VIPWeight: p.VIPWeight},
		Fleet:   d.fleet,
		Horizon: p.Horizon,
	}
	if sc.Fleet.Size() == 0 {
		sc.Fleet = scenario.Homogeneous(p.Mules, p.Speed)
	}
	// Configure adjusts the scenario about to be materialized; when the
	// Spec's bespoke generator replaces materialization there is
	// nothing for it to adjust, so it is skipped (matching the
	// pre-scenario engine, which never invoked it on that path).
	if s.Configure != nil && s.Scenario == nil {
		s.Configure(p, sc)
	}
	if d.workload.Enabled() {
		sc.Workloads = append(sc.Workloads, d.workload)
	}
	return sc
}
