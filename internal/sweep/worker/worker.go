// Package worker is the compute side of the remote plane: a loop that
// pulls cell leases from a tctp-server, computes each cell through the
// engine's single-cell sub-job path, and posts the bit-exact fold
// state back.
//
// The loop is deliberately paranoid about identity. For every lease it
// rebuilds the sweep spec from the lease's transport-neutral request
// (internal/sweep/build — the same translator the server and the CLI
// use), checks the plan fingerprint, and recomputes the leased cell's
// content-addressed key; any mismatch means this binary would compute
// different numbers than the server expects, so the worker reports an
// error instead of posting a silently wrong state. Within a matching
// build, the computed state is identical to what a local run would
// fold — same seeds, same seed-ordered fold, same adaptive stops — so
// a fleet of these workers changes sweep throughput, never bytes.
//
// Long cells are kept alive by heartbeats at a third of the lease TTL;
// a stale heartbeat ack (the server expired or reassigned the lease)
// cancels the computation rather than wasting the rest of it.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"tctp/internal/sweep"
	"tctp/internal/sweep/build"
	"tctp/internal/sweep/protocol"
)

// Options configures one worker process.
type Options struct {
	// Server is the tctp-server base URL (required), e.g.
	// "http://host:8080".
	Server string
	// ID identifies this worker to the scheduler; stable across its
	// leases. Default "<hostname>-<pid>".
	ID string
	// Concurrency is how many cells this worker computes at once
	// (each cell additionally parallelizes its replications over the
	// machine's cores). Default 1.
	Concurrency int
	// Poll is the long-poll horizon sent with each lease request.
	// Default 15s.
	Poll time.Duration
	// Client, when non-nil, replaces http.DefaultClient.
	Client *http.Client
	// Logf, when non-nil, receives the worker's progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Server == "" {
		return opts, fmt.Errorf("worker: Options.Server is required")
	}
	opts.Server = strings.TrimRight(opts.Server, "/")
	if opts.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		opts.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Poll <= 0 {
		opts.Poll = 15 * time.Second
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return opts, nil
}

// Run pulls and computes leases until ctx is cancelled (clean
// shutdown, returns nil) or the options are unusable. Transient
// failures — server down, network errors, refused results — are
// logged and retried with backoff, never fatal: a worker outlives the
// server restarts around it.
func Run(ctx context.Context, o Options) error {
	opts, err := o.withDefaults()
	if err != nil {
		return err
	}
	w := &worker{opts: opts, jobs: make(map[string]*sweep.Job)}
	var wg sync.WaitGroup
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

type worker struct {
	opts Options

	mu   sync.Mutex
	jobs map[string]*sweep.Job // by plan fingerprint
}

// loop is one lease slot: poll, compute, report, repeat.
func (w *worker) loop(ctx context.Context) {
	for ctx.Err() == nil {
		lease, err := w.pullLease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.opts.Logf("worker %s: lease poll: %v", w.opts.ID, err)
			w.sleep(ctx, time.Second)
			continue
		}
		if lease == nil {
			continue // empty poll; ask again
		}
		w.serve(ctx, lease)
	}
}

// pullLease long-polls the server for one lease; nil means the poll
// came back empty.
func (w *worker) pullLease(ctx context.Context) (*protocol.CellLease, error) {
	// Bound the request a margin past the server's poll horizon so a
	// hung connection cannot park the slot forever.
	rctx, cancel := context.WithTimeout(ctx, w.opts.Poll+15*time.Second)
	defer cancel()
	req := protocol.LeaseRequest{Worker: w.opts.ID, WaitSeconds: int(w.opts.Poll / time.Second)}
	status, body, err := w.post(rctx, "/workers/lease", req)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var lease protocol.CellLease
		if err := json.Unmarshal(body, &lease); err != nil {
			return nil, fmt.Errorf("malformed lease: %w", err)
		}
		return &lease, nil
	default:
		return nil, fmt.Errorf("lease: %s", httpError(status, body))
	}
}

// serve computes one leased cell and reports the outcome.
func (w *worker) serve(ctx context.Context, lease *protocol.CellLease) {
	res := protocol.FoldResult{Lease: lease.ID, Worker: w.opts.ID, Key: lease.Key}

	st, err := w.compute(ctx, lease)
	if err != nil {
		if ctx.Err() != nil {
			return // dying mid-cell: say nothing, the lease will expire
		}
		res.Error = err.Error()
		w.opts.Logf("worker %s: cell %d (%s): %v", w.opts.ID, lease.Cell, lease.ID, err)
	} else {
		res.State = &st
	}
	w.report(ctx, lease, res)
}

// compute rebuilds the sweep from the lease's request, verifies the
// lease names the cell this binary would compute, and runs it. The
// cell context is cancelled if a heartbeat comes back stale.
func (w *worker) compute(ctx context.Context, lease *protocol.CellLease) (protocol.FoldState, error) {
	job, err := w.job(lease)
	if err != nil {
		return protocol.FoldState{}, err
	}
	if lease.Cell < 0 || lease.Cell >= job.Cells() {
		return protocol.FoldState{}, fmt.Errorf("lease cell %d outside plan of %d cells", lease.Cell, job.Cells())
	}
	key, err := job.CellKey(lease.Cell)
	if err != nil {
		return protocol.FoldState{}, err
	}
	if key != lease.Key {
		return protocol.FoldState{}, fmt.Errorf("cell %d key mismatch: lease says %s, this build computes %s",
			lease.Cell, lease.Key, key)
	}

	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := w.heartbeat(cellCtx, cancel, lease)
	defer stop()

	start := time.Now()
	st, err := job.ComputeCell(cellCtx, lease.Cell)
	if err != nil {
		if cellCtx.Err() != nil && ctx.Err() == nil {
			return protocol.FoldState{}, fmt.Errorf("lease %s went stale mid-compute", lease.ID)
		}
		return protocol.FoldState{}, err
	}
	w.opts.Logf("worker %s: computed cell %d of %s in %v", w.opts.ID, lease.Cell, lease.Sweep, time.Since(start).Round(time.Millisecond))
	return st, nil
}

// job returns the planned job for the lease's request, memoized by
// plan fingerprint — a fleet serving one sweep plans it once, not once
// per cell.
func (w *worker) job(lease *protocol.CellLease) (*sweep.Job, error) {
	w.mu.Lock()
	if job, ok := w.jobs[lease.Fingerprint]; ok {
		w.mu.Unlock()
		return job, nil
	}
	w.mu.Unlock()

	spec, err := build.Spec(lease.Request)
	if err != nil {
		return nil, fmt.Errorf("rebuilding sweep from lease: %w", err)
	}
	job, err := sweep.Plan(spec)
	if err != nil {
		return nil, fmt.Errorf("planning leased sweep: %w", err)
	}
	if lease.Fingerprint != "" && job.Fingerprint() != lease.Fingerprint {
		return nil, fmt.Errorf("plan fingerprint mismatch: lease says %s, this build plans %s",
			lease.Fingerprint, job.Fingerprint())
	}
	w.mu.Lock()
	w.jobs[lease.Fingerprint] = job
	w.mu.Unlock()
	return job, nil
}

// heartbeat extends the lease at a third of its TTL until stopped; a
// stale ack cancels the cell's computation. Returns the stop function.
func (w *worker) heartbeat(ctx context.Context, cancel context.CancelFunc, lease *protocol.CellLease) func() {
	ttl := time.Duration(lease.TTLSeconds) * time.Second
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	interval := ttl / 3
	if interval < 200*time.Millisecond {
		interval = 200 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				hctx, hcancel := context.WithTimeout(ctx, interval)
				status, body, err := w.post(hctx, "/workers/heartbeat",
					protocol.LeaseHeartbeat{Lease: lease.ID, Worker: w.opts.ID})
				hcancel()
				if err != nil {
					continue // transient; the next beat retries
				}
				var ack protocol.LeaseAck
				if json.Unmarshal(body, &ack) == nil && (ack.Stale || status == http.StatusConflict) {
					w.opts.Logf("worker %s: lease %s went stale; abandoning cell %d", w.opts.ID, lease.ID, lease.Cell)
					cancel()
					return
				}
			case <-done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	return func() { close(done) }
}

// report posts the cell's result, retrying transient transport errors
// briefly — an unreported success costs a whole recompute elsewhere. A
// stale ack is normal after reassignment and just logged.
func (w *worker) report(ctx context.Context, lease *protocol.CellLease, res protocol.FoldResult) {
	for attempt := 0; attempt < 5; attempt++ {
		rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		status, body, err := w.post(rctx, "/workers/result", res)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.opts.Logf("worker %s: posting result of lease %s: %v", w.opts.ID, lease.ID, err)
			w.sleep(ctx, time.Second)
			continue
		}
		var ack protocol.LeaseAck
		_ = json.Unmarshal(body, &ack)
		switch {
		case ack.Accepted:
		case ack.Stale || status == http.StatusConflict:
			w.opts.Logf("worker %s: result of lease %s refused as stale (cell was reassigned)", w.opts.ID, lease.ID)
		default:
			w.opts.Logf("worker %s: result of lease %s refused: %s", w.opts.ID, lease.ID, httpError(status, body))
		}
		return
	}
}

// post sends one JSON request and returns the status and body.
func (w *worker) post(ctx context.Context, path string, v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Server+path, bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// sleep waits d or until ctx is done.
func (w *worker) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// httpError renders a non-2xx response for logs.
func httpError(status int, body []byte) string {
	msg := strings.TrimSpace(string(body))
	if len(msg) > 200 {
		msg = msg[:200] + "…"
	}
	if msg == "" {
		return fmt.Sprintf("HTTP %d", status)
	}
	return fmt.Sprintf("HTTP %d: %s", status, msg)
}
