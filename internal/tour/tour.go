// Package tour constructs Hamiltonian circuits (closed tours) over a
// set of target points. The paper's planners all start from "the same
// Hamiltonian Circuit [constructed] based on a convex hull concept
// proposed in [5]" (§2.2-A); ConvexHullInsertion implements that
// construction. Alternative constructions (nearest neighbour, greedy
// edge, random) and local-search improvers (2-opt, Or-opt) are
// provided for the ablation experiments and as independent
// cross-checks in tests.
//
// A Tour is a permutation of point indices; the circuit implicitly
// closes from the last index back to the first.
package tour

import (
	"fmt"
	"math"
	"sort"

	"tctp/internal/geom"
	"tctp/internal/geom/index"
	"tctp/internal/hull"
	"tctp/internal/xrand"
)

// indexThreshold is the point count below which the constructions stay
// on their simple quadratic paths: building a spatial index costs more
// than it saves on tiny inputs. The indexed and brute paths are
// bit-identical (see the *Brute equivalence tests), so the threshold
// is purely a performance knob.
const indexThreshold = 48

// Tour is an ordering of point indices forming a Hamiltonian circuit.
type Tour []int

// Length returns the total length of the closed tour over pts.
func Length(pts []geom.Point, t Tour) float64 {
	if len(t) < 2 {
		return 0
	}
	total := 0.0
	for i := range t {
		total += pts[t[i]].Dist(pts[t[(i+1)%len(t)]])
	}
	return total
}

// Points materializes the tour as the ordered point sequence.
func Points(pts []geom.Point, t Tour) []geom.Point {
	out := make([]geom.Point, len(t))
	for i, idx := range t {
		out[i] = pts[idx]
	}
	return out
}

// Validate checks that t is a permutation of [0, n). A nil error means
// the tour visits each of the n targets exactly once.
func Validate(t Tour, n int) error {
	if len(t) != n {
		return fmt.Errorf("tour: length %d, want %d", len(t), n)
	}
	seen := make([]bool, n)
	for i, v := range t {
		if v < 0 || v >= n {
			return fmt.Errorf("tour: index %d at position %d out of range [0,%d)", v, i, n)
		}
		if seen[v] {
			return fmt.Errorf("tour: index %d visited twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Rotate returns the tour rotated so that it begins at the position
// holding index start. It panics if start is absent.
func Rotate(t Tour, start int) Tour {
	for i, v := range t {
		if v == start {
			out := make(Tour, 0, len(t))
			out = append(out, t[i:]...)
			out = append(out, t[:i]...)
			return out
		}
	}
	panic(fmt.Sprintf("tour: start index %d not in tour", start))
}

// Reverse returns the tour traversed in the opposite direction,
// keeping the same starting element.
func Reverse(t Tour) Tour {
	out := make(Tour, len(t))
	if len(t) == 0 {
		return out
	}
	out[0] = t[0]
	for i := 1; i < len(t); i++ {
		out[i] = t[len(t)-i]
	}
	return out
}

// SignedArea returns the signed area swept by the closed tour
// (shoelace). Positive means counterclockwise traversal.
func SignedArea(pts []geom.Point, t Tour) float64 {
	n := len(t)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		a, b := pts[t[i]], pts[t[(i+1)%n]]
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum / 2
}

// EnsureCCW returns the tour oriented counterclockwise (the traversal
// direction used throughout the paper). Degenerate tours are returned
// unchanged.
func EnsureCCW(pts []geom.Point, t Tour) Tour {
	if SignedArea(pts, t) < 0 {
		return Reverse(t)
	}
	return t
}

// hullSkeleton builds the initial convex-hull cycle shared by the
// accelerated and brute convex-hull-insertion paths: hull vertices
// mapped back to point indices (duplicates map to the first unused
// match) plus the list of remaining interior indices. ok is false when
// the hull is degenerate and the caller should fall back to index
// order.
func hullSkeleton(pts []geom.Point) (t Tour, remaining []int, ok bool) {
	n := len(pts)
	hullPts := hull.Convex(pts)
	used := make([]bool, n)
	t = make(Tour, 0, n)
	if n >= indexThreshold {
		// An exact-match index query replaces the O(hull·n) linear
		// scan. Dist2(p, hp) == 0 exactly when p == hp (both squared
		// terms are non-negative, so the sum is zero only at exact
		// coordinate equality), so Within(hp, 0) yields precisely the
		// brute scan's candidates, already in ascending index order.
		g := index.New(pts)
		var matches []int
		for _, hp := range hullPts {
			matches = g.Within(hp, 0, matches[:0])
			for _, i := range matches {
				if !used[i] {
					t = append(t, i)
					used[i] = true
					break
				}
			}
		}
	} else {
		for _, hp := range hullPts {
			for i, p := range pts {
				if !used[i] && p == hp {
					t = append(t, i)
					used[i] = true
					break
				}
			}
		}
	}
	if len(t) == 0 {
		return nil, nil, false
	}
	for i := 0; i < n; i++ {
		if !used[i] {
			remaining = append(remaining, i)
		}
	}
	return t, remaining, true
}

// indexOrder returns the degenerate-hull fallback tour 0..n-1.
func indexOrder(n int) Tour {
	t := make(Tour, n)
	for i := range t {
		t[i] = i
	}
	return t
}

// ConvexHullInsertion builds a circuit with the convex-hull-and-
// insertion heuristic attributed to Wu et al. [5]: the convex hull of
// the targets forms the initial skeleton cycle, then each remaining
// interior target is inserted — cheapest insertion first — at the
// position that minimizes the added detour. The resulting tour is
// oriented counterclockwise. This is the "CHB" construction used by
// both the paper's planners and the CHB baseline.
//
// The selection is accelerated by caching, per remaining point, its
// cheapest (detour, edge) pair and repairing only the caches the last
// insertion invalidated; the result is bit-identical to
// ConvexHullInsertionBrute (see the equivalence tests).
func ConvexHullInsertion(pts []geom.Point) Tour {
	n := len(pts)
	switch n {
	case 0:
		return Tour{}
	case 1:
		return Tour{0}
	case 2:
		return Tour{0, 1}
	}
	t, remaining, ok := hullSkeleton(pts)
	if !ok {
		return indexOrder(n)
	}

	// Per remaining point: the smallest detour over the current tour
	// edges and the FIRST edge index attaining it — exactly what the
	// brute scan's strict-< loop tracks. Edge j is (t[j], t[j+1 mod]).
	cost := make([]float64, n)
	edge := make([]int32, n)
	rescan := func(pi int) {
		p := pts[pi]
		bc, be := math.Inf(1), int32(-1)
		for j := range t {
			a := pts[t[j]]
			b := pts[t[(j+1)%len(t)]]
			if c := geom.DetourCost(a, b, p); c < bc {
				bc, be = c, int32(j)
			}
		}
		cost[pi], edge[pi] = bc, be
	}
	for _, pi := range remaining {
		rescan(pi)
	}

	for len(remaining) > 0 {
		// Global cheapest (point, edge): first point in remaining
		// order attaining the minimum cost, matching the brute outer
		// loop's strict-< scan.
		bestPoint := -1
		bestCost := math.Inf(1)
		for ri, pi := range remaining {
			if cost[pi] < bestCost {
				bestCost = cost[pi]
				bestPoint = ri
			}
		}
		pi := remaining[bestPoint]
		broken := edge[pi] // edge index destroyed by the insertion
		bestPos := int(broken) + 1
		remaining = append(remaining[:bestPoint], remaining[bestPoint+1:]...)
		t = append(t, 0)
		copy(t[bestPos+1:], t[bestPos:])
		t[bestPos] = pi

		if len(remaining) == 0 {
			break
		}
		// The insertion replaced edge `broken` with two edges at
		// indices broken (a→p) and broken+1 (p→b); edges before
		// `broken` keep their index, later ones shift by one. A cached
		// minimum survives unless its edge was the broken one; the two
		// new edges are merged in by (cost, edge index) lexicographic
		// minimum, which is what a fresh first-encounter strict-< scan
		// would report.
		a := pts[t[bestPos-1]]
		p := pts[pi]
		b := pts[t[(bestPos+1)%len(t)]]
		for _, qi := range remaining {
			if edge[qi] == broken {
				rescan(qi)
				continue
			}
			if edge[qi] > broken {
				edge[qi]++
			}
			q := pts[qi]
			if c := geom.DetourCost(a, p, q); c < cost[qi] || (c == cost[qi] && broken < edge[qi]) {
				cost[qi], edge[qi] = c, broken
			}
			if c := geom.DetourCost(p, b, q); c < cost[qi] || (c == cost[qi] && broken+1 < edge[qi]) {
				cost[qi], edge[qi] = c, broken+1
			}
		}
	}
	return EnsureCCW(pts, t)
}

// ConvexHullInsertionBrute is the original quadratic-scan
// implementation of ConvexHullInsertion, retained as the reference the
// accelerated path must reproduce bit-for-bit and as the baseline for
// the BenchmarkPlan* speedup measurements.
func ConvexHullInsertionBrute(pts []geom.Point) Tour {
	n := len(pts)
	switch n {
	case 0:
		return Tour{}
	case 1:
		return Tour{0}
	case 2:
		return Tour{0, 1}
	}

	hullPts := hull.Convex(pts)
	used := make([]bool, n)
	t := make(Tour, 0, n)
	for _, hp := range hullPts {
		// Map hull vertices back to indices; duplicates in pts map to
		// the first unused match so every index is inserted once.
		for i, p := range pts {
			if !used[i] && p == hp {
				t = append(t, i)
				used[i] = true
				break
			}
		}
	}
	if len(t) == 0 {
		// All points coincide or are collinear enough for the hull to
		// be degenerate; fall back to index order.
		return indexOrder(n)
	}

	var remaining []int
	for i := 0; i < n; i++ {
		if !used[i] {
			remaining = append(remaining, i)
		}
	}

	// Cheapest insertion: repeatedly pick the (point, edge) pair with
	// the globally smallest detour. O(k²·|t|) overall, fine for the
	// target counts in the paper's experiments (≤ a few hundred).
	for len(remaining) > 0 {
		bestPoint, bestPos := -1, -1
		bestCost := math.Inf(1)
		for ri, pi := range remaining {
			p := pts[pi]
			for j := range t {
				a := pts[t[j]]
				b := pts[t[(j+1)%len(t)]]
				if c := geom.DetourCost(a, b, p); c < bestCost {
					bestCost = c
					bestPoint = ri
					bestPos = j + 1
				}
			}
		}
		pi := remaining[bestPoint]
		remaining = append(remaining[:bestPoint], remaining[bestPoint+1:]...)
		t = append(t, 0)
		copy(t[bestPos+1:], t[bestPos:])
		t[bestPos] = pi
	}
	return EnsureCCW(pts, t)
}

// NearestNeighbor builds a circuit by repeatedly travelling to the
// closest unvisited target, starting from index start. Above the index
// threshold the unvisited set lives in a spatial grid and each step is
// a Nearest query plus a Remove; the brute scan breaks ties by the
// first (lowest) index, which is exactly the grid's (distance, index)
// tie-break, so both paths yield the same tour bit-for-bit.
func NearestNeighbor(pts []geom.Point, start int) Tour {
	n := len(pts)
	if n == 0 {
		return Tour{}
	}
	if start < 0 || start >= n {
		panic(fmt.Sprintf("tour: NearestNeighbor start %d out of range", start))
	}
	if n < indexThreshold {
		return NearestNeighborBrute(pts, start)
	}
	g := index.New(pts)
	t := make(Tour, 0, n)
	cur := start
	g.Remove(cur)
	t = append(t, cur)
	for len(t) < n {
		best, _ := g.Nearest(pts[cur])
		g.Remove(best)
		t = append(t, best)
		cur = best
	}
	return t
}

// NearestNeighborBrute is the original linear-scan implementation of
// NearestNeighbor, retained as the reference the indexed path must
// reproduce bit-for-bit and as the baseline for the BenchmarkPlan*
// speedup measurements.
func NearestNeighborBrute(pts []geom.Point, start int) Tour {
	n := len(pts)
	if n == 0 {
		return Tour{}
	}
	if start < 0 || start >= n {
		panic(fmt.Sprintf("tour: NearestNeighbor start %d out of range", start))
	}
	visited := make([]bool, n)
	t := make(Tour, 0, n)
	cur := start
	visited[cur] = true
	t = append(t, cur)
	for len(t) < n {
		best, bestD := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if visited[i] {
				continue
			}
			if d := pts[cur].Dist2(pts[i]); d < bestD {
				best, bestD = i, d
			}
		}
		visited[best] = true
		t = append(t, best)
		cur = best
	}
	return t
}

// GreedyEdge builds a circuit by considering candidate edges in
// ascending length order and accepting each edge that keeps every
// vertex at degree ≤ 2 and creates no premature subcycle, finally
// closing the two loose ends. Union-find tracks connectivity.
//
// Above the index threshold the sorted edge stream is generated lazily
// from per-vertex k-nearest-neighbour streams merged through a heap (a
// k-way merge of sorted runs), so only the short-edge prefix that the
// acceptance loop actually consumes is ever materialized — the
// accepted edges, and hence the tour, are bit-identical to
// GreedyEdgeBrute's full O(n² log n) sort (see the equivalence tests).
func GreedyEdge(pts []geom.Point) Tour {
	if len(pts) < indexThreshold {
		return GreedyEdgeBrute(pts)
	}
	return greedyEdgeIndexed(pts)
}

// GreedyEdgeBrute is the original sort-all-edges implementation of
// GreedyEdge, retained as the reference the lazy k-NN-stream path must
// reproduce bit-for-bit and as the baseline for the BenchmarkPlan*
// speedup measurements.
func GreedyEdgeBrute(pts []geom.Point) Tour {
	n := len(pts)
	if n == 0 {
		return Tour{}
	}
	if n == 1 {
		return Tour{0}
	}

	type edge struct {
		u, v int
		d    float64
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{i, j, pts[i].Dist2(pts[j])})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].d != edges[b].d {
			return edges[a].d < edges[b].d
		}
		if edges[a].u != edges[b].u {
			return edges[a].u < edges[b].u
		}
		return edges[a].v < edges[b].v
	})

	uf := newUnionFind(n)
	degree := make([]int, n)
	adj := make([][]int, n)
	accepted := 0
	for _, e := range edges {
		if accepted == n-1 {
			break
		}
		if degree[e.u] >= 2 || degree[e.v] >= 2 {
			continue
		}
		if uf.find(e.u) == uf.find(e.v) {
			continue // would close a subcycle early
		}
		uf.union(e.u, e.v)
		degree[e.u]++
		degree[e.v]++
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
		accepted++
	}

	return walkPath(n, degree, adj)
}

// walkPath walks the Hamiltonian path assembled by the greedy-edge
// acceptance loop, starting from the first endpoint (degree < 2).
func walkPath(n int, degree []int, adj [][]int) Tour {
	start := 0
	for i := 0; i < n; i++ {
		if degree[i] < 2 {
			start = i
			break
		}
	}
	t := make(Tour, 0, n)
	prev := -1
	cur := start
	for len(t) < n {
		t = append(t, cur)
		next := -1
		for _, nb := range adj[cur] {
			if nb != prev {
				next = nb
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}
	return t
}

// geCand is one lazily generated candidate edge: the head of vertex
// src's neighbour stream, keyed for the global merge by (d, a, b) with
// a < b — the same ordering GreedyEdgeBrute sorts the full edge list
// by.
type geCand struct {
	d    float64
	a, b int32
	src  int32
}

func geLess(x, y geCand) bool {
	if x.d != y.d {
		return x.d < y.d
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

// geStream lazily enumerates one vertex's neighbours in ascending
// (distance, index) order by re-querying KNearest with a doubling k.
// Re-queries return the same deterministic prefix, so pos carries
// over.
type geStream struct {
	buf []int
	pos int
	k   int
}

// next returns the stream's next neighbour of u, or ok=false when all
// n−1 neighbours have been emitted.
func (s *geStream) next(g *index.Grid, pts []geom.Point, u, n int) (nb int, d float64, ok bool) {
	for {
		for s.pos < len(s.buf) {
			v := s.buf[s.pos]
			s.pos++
			if v != u {
				return v, pts[u].Dist2(pts[v]), true
			}
		}
		if s.k >= n {
			return 0, 0, false
		}
		if s.k == 0 {
			s.k = 8
		} else {
			s.k *= 2
		}
		if s.k > n {
			s.k = n
		}
		s.buf = g.KNearest(pts[u], s.k, s.buf[:0])
	}
}

// greedyEdgeIndexed is GreedyEdge's lazy candidate-edge mode. Each
// vertex contributes a sorted neighbour stream; a heap merges the
// stream heads, so candidate edges pop in exactly the (d, u, v) order
// of the brute path's full sort (a k-way merge of sorted runs). Each
// undirected edge appears in two streams; the first pop wins and the
// duplicate is skipped. A vertex's stream is abandoned once the vertex
// reaches degree 2 — every remaining candidate it would produce is
// rejected by the degree check no matter when it surfaces, because
// degrees never decrease.
func greedyEdgeIndexed(pts []geom.Point) Tour {
	n := len(pts)
	g := index.New(pts)
	streams := make([]geStream, n)

	heap := make([]geCand, 0, n)
	push := func(c geCand) {
		heap = append(heap, c)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !geLess(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() geCand {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && geLess(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && geLess(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}
	cand := func(u, v int, d float64, src int) geCand {
		a, b := int32(u), int32(v)
		if a > b {
			a, b = b, a
		}
		return geCand{d, a, b, int32(src)}
	}

	for u := 0; u < n; u++ {
		if v, d, ok := streams[u].next(g, pts, u, n); ok {
			push(cand(u, v, d, u))
		}
	}

	uf := newUnionFind(n)
	degree := make([]int, n)
	adj := make([][]int, n)
	seen := make(map[uint64]struct{}, 4*n)
	accepted := 0
	for accepted < n-1 && len(heap) > 0 {
		c := pop()
		key := uint64(c.a)*uint64(n) + uint64(c.b)
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			u, v := int(c.a), int(c.b)
			if degree[u] < 2 && degree[v] < 2 && uf.find(u) != uf.find(v) {
				uf.union(u, v)
				degree[u]++
				degree[v]++
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
				accepted++
			}
		}
		src := int(c.src)
		if degree[src] < 2 {
			if v, d, ok := streams[src].next(g, pts, src, n); ok {
				push(cand(src, v, d, src))
			}
		}
	}
	return walkPath(n, degree, adj)
}

// Random returns a uniformly random circuit.
func Random(n int, src *xrand.Source) Tour {
	return Tour(src.Perm(n))
}

// BruteForce returns a provably optimal circuit by exhaustive search.
// It fixes index 0 as the start (circuits are rotation-invariant) and
// enumerates the (n−1)! remaining orders, so it is only usable as a
// test oracle for small n; it panics for n > 10.
func BruteForce(pts []geom.Point) Tour {
	n := len(pts)
	if n > 10 {
		panic(fmt.Sprintf("tour: BruteForce with %d points (max 10)", n))
	}
	if n == 0 {
		return Tour{}
	}
	best := make(Tour, n)
	for i := range best {
		best[i] = i
	}
	if n < 4 {
		return best
	}
	bestLen := Length(pts, best)

	perm := make(Tour, n)
	copy(perm, best)
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			if l := Length(pts, perm); l < bestLen {
				bestLen = l
				copy(best, perm)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(1) // index 0 stays fixed
	return best
}

// HasProperCrossing reports whether any two non-adjacent tour edges
// properly cross. A 2-opt-optimal Euclidean tour never has one
// (uncrossing two edges always shortens the tour), which the property
// tests exploit.
func HasProperCrossing(pts []geom.Point, t Tour) bool {
	n := len(t)
	if n < 4 {
		return false
	}
	edge := func(i int) geom.Segment {
		return geom.Segment{A: pts[t[i]], B: pts[t[(i+1)%n]]}
	}
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			if i == 0 && j == n-1 {
				continue // adjacent around the wrap
			}
			if edge(i).ProperlyIntersects(edge(j)) {
				return true
			}
		}
	}
	return false
}

// TwoOpt improves the tour with 2-opt moves (reversing a sub-path when
// that shortens the circuit) until no improving move exists. It
// returns a new tour; the input is not modified.
func TwoOpt(pts []geom.Point, t Tour) Tour {
	n := len(t)
	out := make(Tour, n)
	copy(out, t)
	if n < 4 {
		return out
	}
	improved := true
	for improved {
		improved = false
		for i := 0; i < n-1; i++ {
			a, b := pts[out[i]], pts[out[(i+1)%n]]
			for j := i + 2; j < n; j++ {
				if i == 0 && j == n-1 {
					continue // same edge pair
				}
				c, d := pts[out[j]], pts[out[(j+1)%n]]
				delta := a.Dist(c) + b.Dist(d) - a.Dist(b) - c.Dist(d)
				if delta < -geom.Eps {
					// Reverse out[i+1 .. j].
					for lo, hi := i+1, j; lo < hi; lo, hi = lo+1, hi-1 {
						out[lo], out[hi] = out[hi], out[lo]
					}
					improved = true
					a, b = pts[out[i]], pts[out[(i+1)%n]]
				}
			}
		}
	}
	return out
}

// OrOpt improves the tour by relocating chains of 1–3 consecutive
// targets to a better position, repeating until no improving move
// exists. It returns a new tour; the input is not modified.
func OrOpt(pts []geom.Point, t Tour) Tour {
	n := len(t)
	out := make(Tour, n)
	copy(out, t)
	if n < 5 {
		return out
	}
	dist := func(i, j int) float64 { return pts[out[i]].Dist(pts[out[j]]) }
	mod := func(i int) int { return ((i % n) + n) % n }

	improved := true
	for improved {
		improved = false
		for segLen := 1; segLen <= 3; segLen++ {
			for i := 0; i < n; i++ {
				// Chain occupies positions i .. i+segLen-1 (cyclic).
				iPrev := mod(i - 1)
				iEnd := mod(i + segLen - 1)
				iNext := mod(i + segLen)
				if iPrev == iEnd || iNext == i {
					continue
				}
				removeGain := dist(iPrev, i) + dist(iEnd, iNext) - dist(iPrev, iNext)
				if removeGain <= geom.Eps {
					continue
				}
				for j := 0; j < n; j++ {
					// Insert between positions j and j+1; skip spots
					// inside or adjacent to the chain.
					inside := false
					for k := 0; k < segLen; k++ {
						if mod(i+k) == j || mod(i+k) == mod(j+1) {
							inside = true
							break
						}
					}
					if inside || j == iPrev {
						continue
					}
					insertCost := dist(j, i) + dist(iEnd, mod(j+1)) - dist(j, mod(j+1))
					if insertCost < removeGain-geom.Eps {
						out = relocate(out, i, segLen, j)
						improved = true
						break
					}
				}
				if improved {
					break
				}
			}
			if improved {
				break
			}
		}
	}
	return out
}

// relocate moves the cyclic chain starting at position i with length
// segLen so it follows the element currently at position j. Positions
// are indices into t.
func relocate(t Tour, i, segLen, j int) Tour {
	n := len(t)
	chain := make([]int, segLen)
	for k := 0; k < segLen; k++ {
		chain[k] = t[(i+k)%n]
	}
	after := t[j]
	inChain := make(map[int]bool, segLen)
	for _, v := range chain {
		inChain[v] = true
	}
	rest := make([]int, 0, n-segLen)
	for _, v := range t {
		if !inChain[v] {
			rest = append(rest, v)
		}
	}
	out := make(Tour, 0, n)
	for _, v := range rest {
		out = append(out, v)
		if v == after {
			out = append(out, chain...)
		}
	}
	return out
}

// unionFind is a standard disjoint-set structure with path halving and
// union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
