package tour

import (
	"math/rand"
	"testing"

	"tctp/internal/geom"
)

// equivalencePointSets yields point families that stress the indexed
// constructions: uniform random (above and below the index threshold),
// duplicate-heavy, collinear, clustered, and near-coincident sets.
func equivalencePointSets(rnd *rand.Rand) map[string][]geom.Point {
	sets := map[string][]geom.Point{}

	for _, n := range []int{3, 10, indexThreshold - 1, indexThreshold, 120, 400} {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rnd.Float64()*800, rnd.Float64()*800)
		}
		sets[nameN("uniform", n)] = pts
	}

	dup := make([]geom.Point, 0, 180)
	for i := 0; i < 60; i++ {
		p := geom.Pt(rnd.Float64()*200, rnd.Float64()*200)
		for j := 0; j < 3; j++ {
			dup = append(dup, p)
		}
	}
	sets["duplicates"] = dup

	col := make([]geom.Point, 90)
	for i := range col {
		col[i] = geom.Pt(float64(i%45)*10, 0)
	}
	sets["collinear"] = col

	clustered := make([]geom.Point, 0, 200)
	for c := 0; c < 5; c++ {
		cx, cy := rnd.Float64()*800, rnd.Float64()*800
		for i := 0; i < 40; i++ {
			clustered = append(clustered, geom.Pt(cx+rnd.NormFloat64()*3, cy+rnd.NormFloat64()*3))
		}
	}
	sets["clustered"] = clustered

	tiny := make([]geom.Point, 100)
	for i := range tiny {
		tiny[i] = geom.Pt(400+rnd.Float64()*1e-6, 400+rnd.Float64()*1e-6)
	}
	sets["near-coincident"] = tiny

	return sets
}

func nameN(prefix string, n int) string {
	return prefix + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func sameTour(a, b Tour) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNearestNeighborMatchesBrute pins the indexed construction to the
// brute scan bit-for-bit, across starts.
func TestNearestNeighborMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for name, pts := range equivalencePointSets(rnd) {
		starts := []int{0, len(pts) - 1, len(pts) / 2}
		for _, s := range starts {
			got := NearestNeighbor(pts, s)
			want := NearestNeighborBrute(pts, s)
			if !sameTour(got, want) {
				t.Errorf("%s start %d: indexed tour differs from brute\n got %v\nwant %v", name, s, got, want)
			}
		}
	}
}

// TestConvexHullInsertionMatchesBrute pins the cached cheapest-
// insertion path to the quadratic rescan bit-for-bit.
func TestConvexHullInsertionMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	for name, pts := range equivalencePointSets(rnd) {
		got := ConvexHullInsertion(pts)
		want := ConvexHullInsertionBrute(pts)
		if !sameTour(got, want) {
			t.Errorf("%s: accelerated tour differs from brute\n got %v\nwant %v", name, got, want)
		}
	}
}

// TestGreedyEdgeMatchesBrute pins the lazy candidate-edge mode to the
// full-sort path bit-for-bit.
func TestGreedyEdgeMatchesBrute(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	for name, pts := range equivalencePointSets(rnd) {
		got := GreedyEdge(pts)
		want := GreedyEdgeBrute(pts)
		if !sameTour(got, want) {
			t.Errorf("%s: lazy-mode tour differs from brute\n got %v\nwant %v", name, got, want)
		}
	}
}

// TestGreedyEdgeIndexedForced exercises the lazy mode below the
// dispatch threshold too, so the equivalence does not silently rest on
// both paths taking the brute branch.
func TestGreedyEdgeIndexedForced(t *testing.T) {
	rnd := rand.New(rand.NewSource(14))
	for n := 2; n <= 40; n++ {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rnd.Float64()*100, rnd.Float64()*100)
		}
		got := greedyEdgeIndexed(pts)
		want := GreedyEdgeBrute(pts)
		if !sameTour(got, want) {
			t.Fatalf("n=%d: lazy-mode tour differs from brute\n got %v\nwant %v", n, got, want)
		}
	}
}
