package tour

import (
	"math"
	"testing"
	"testing/quick"

	"tctp/internal/geom"
	"tctp/internal/xrand"
)

func randomPoints(src *xrand.Source, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	return pts
}

func gridPoints() []geom.Point {
	return []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0),
		geom.Pt(200, 100), geom.Pt(100, 100), geom.Pt(0, 100),
	}
}

func TestLength(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(3, 4)}
	got := Length(pts, Tour{0, 1, 2})
	if math.Abs(got-12) > 1e-9 {
		t.Fatalf("Length = %v, want 12", got)
	}
	if l := Length(pts, Tour{0}); l != 0 {
		t.Fatalf("single-element length = %v", l)
	}
	if l := Length(pts, Tour{}); l != 0 {
		t.Fatalf("empty length = %v", l)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Tour{2, 0, 1}, 3); err != nil {
		t.Fatalf("valid tour rejected: %v", err)
	}
	if err := Validate(Tour{0, 1}, 3); err == nil {
		t.Fatal("short tour accepted")
	}
	if err := Validate(Tour{0, 0, 1}, 3); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := Validate(Tour{0, 1, 3}, 3); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := Validate(Tour{0, -1, 1}, 3); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestRotate(t *testing.T) {
	tr := Tour{3, 1, 4, 0, 2}
	got := Rotate(tr, 4)
	want := Tour{4, 0, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rotate = %v, want %v", got, want)
		}
	}
	// Original untouched.
	if tr[0] != 3 {
		t.Fatal("Rotate modified input")
	}
}

func TestRotatePanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rotate with missing index did not panic")
		}
	}()
	Rotate(Tour{0, 1}, 5)
}

func TestReverse(t *testing.T) {
	tr := Tour{0, 1, 2, 3}
	got := Reverse(tr)
	want := Tour{0, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Reverse = %v, want %v", got, want)
		}
	}
	if len(Reverse(Tour{})) != 0 {
		t.Fatal("Reverse empty")
	}
}

func TestReverseKeepsLength(t *testing.T) {
	src := xrand.New(5)
	pts := randomPoints(src, 12)
	tr := Tour(src.Perm(12))
	if math.Abs(Length(pts, tr)-Length(pts, Reverse(tr))) > 1e-9 {
		t.Fatal("reversal changed tour length")
	}
}

func TestEnsureCCW(t *testing.T) {
	pts := gridPoints()
	ccw := Tour{0, 1, 2, 3, 4, 5} // already counterclockwise
	if SignedArea(pts, ccw) <= 0 {
		t.Fatal("test fixture not CCW")
	}
	cw := Reverse(ccw)
	fixed := EnsureCCW(pts, cw)
	if SignedArea(pts, fixed) <= 0 {
		t.Fatal("EnsureCCW did not flip a clockwise tour")
	}
	same := EnsureCCW(pts, ccw)
	if SignedArea(pts, same) <= 0 {
		t.Fatal("EnsureCCW broke a CCW tour")
	}
}

func TestConvexHullInsertionValid(t *testing.T) {
	src := xrand.New(7)
	for trial := 0; trial < 30; trial++ {
		n := 3 + src.Intn(60)
		pts := randomPoints(src, n)
		tr := ConvexHullInsertion(pts)
		if err := Validate(tr, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestConvexHullInsertionSmall(t *testing.T) {
	if tr := ConvexHullInsertion(nil); len(tr) != 0 {
		t.Fatalf("empty: %v", tr)
	}
	if tr := ConvexHullInsertion([]geom.Point{geom.Pt(1, 1)}); len(tr) != 1 {
		t.Fatalf("single: %v", tr)
	}
	two := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	if tr := ConvexHullInsertion(two); Validate(tr, 2) != nil {
		t.Fatalf("two: %v", tr)
	}
	// All points identical — hull degenerates; must still be valid.
	same := []geom.Point{geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5), geom.Pt(5, 5)}
	if tr := ConvexHullInsertion(same); Validate(tr, 4) != nil {
		t.Fatalf("identical points: %v", tr)
	}
}

func TestConvexHullInsertionIsCCW(t *testing.T) {
	src := xrand.New(11)
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(src, 20)
		tr := ConvexHullInsertion(pts)
		if SignedArea(pts, tr) < 0 {
			t.Fatalf("trial %d: tour is clockwise", trial)
		}
	}
}

func TestConvexHullInsertionOnConvexSet(t *testing.T) {
	// When every point is a hull vertex the tour must be exactly the
	// hull cycle, which is optimal.
	pts := gridPoints()
	tr := ConvexHullInsertion(pts)
	if err := Validate(tr, len(pts)); err != nil {
		t.Fatal(err)
	}
	want := 2*200.0 + 2*100.0
	if got := Length(pts, tr); math.Abs(got-want) > 1e-9 {
		t.Fatalf("convex-set tour length = %v, want %v", got, want)
	}
}

func TestNearestNeighborValid(t *testing.T) {
	src := xrand.New(13)
	pts := randomPoints(src, 30)
	tr := NearestNeighbor(pts, 0)
	if err := Validate(tr, 30); err != nil {
		t.Fatal(err)
	}
	if tr[0] != 0 {
		t.Fatalf("tour does not start at requested index: %v", tr[0])
	}
	tr2 := NearestNeighbor(pts, 7)
	if tr2[0] != 7 {
		t.Fatalf("start 7 ignored: %v", tr2[0])
	}
}

func TestNearestNeighborPanicsOnBadStart(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad start did not panic")
		}
	}()
	NearestNeighbor(randomPoints(xrand.New(1), 5), 9)
}

func TestGreedyEdgeValid(t *testing.T) {
	src := xrand.New(17)
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.Intn(50)
		pts := randomPoints(src, n)
		tr := GreedyEdge(pts)
		if err := Validate(tr, n); err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
	}
	if tr := GreedyEdge(nil); len(tr) != 0 {
		t.Fatal("empty greedy")
	}
	if tr := GreedyEdge([]geom.Point{geom.Pt(0, 0)}); len(tr) != 1 {
		t.Fatal("single greedy")
	}
}

func TestRandomTourValid(t *testing.T) {
	src := xrand.New(19)
	tr := Random(25, src)
	if err := Validate(tr, 25); err != nil {
		t.Fatal(err)
	}
}

func TestTwoOptImproves(t *testing.T) {
	src := xrand.New(23)
	pts := randomPoints(src, 40)
	start := Random(40, src)
	before := Length(pts, start)
	after := TwoOpt(pts, start)
	if err := Validate(after, 40); err != nil {
		t.Fatal(err)
	}
	la := Length(pts, after)
	if la > before+1e-9 {
		t.Fatalf("2-opt worsened tour: %v -> %v", before, la)
	}
	// A random tour over 40 points is far from optimal; 2-opt should
	// find a strictly better one.
	if la >= before {
		t.Fatalf("2-opt found no improvement on a random tour (%v)", before)
	}
}

func TestTwoOptFixedPoint(t *testing.T) {
	src := xrand.New(29)
	pts := randomPoints(src, 25)
	once := TwoOpt(pts, Random(25, src))
	twice := TwoOpt(pts, once)
	if math.Abs(Length(pts, once)-Length(pts, twice)) > 1e-9 {
		t.Fatal("2-opt not at a fixed point after convergence")
	}
}

func TestTwoOptSmallInputsNoop(t *testing.T) {
	pts := randomPoints(xrand.New(1), 3)
	tr := Tour{0, 1, 2}
	out := TwoOpt(pts, tr)
	if err := Validate(out, 3); err != nil {
		t.Fatal(err)
	}
}

func TestOrOptImprovesOrKeeps(t *testing.T) {
	src := xrand.New(31)
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(src, 30)
		start := Random(30, src)
		before := Length(pts, start)
		after := OrOpt(pts, start)
		if err := Validate(after, 30); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if Length(pts, after) > before+1e-9 {
			t.Fatalf("trial %d: Or-opt worsened tour", trial)
		}
	}
}

func TestOrOptPreservesInput(t *testing.T) {
	src := xrand.New(37)
	pts := randomPoints(src, 20)
	tr := Random(20, src)
	cp := make(Tour, len(tr))
	copy(cp, tr)
	OrOpt(pts, tr)
	TwoOpt(pts, tr)
	for i := range tr {
		if tr[i] != cp[i] {
			t.Fatal("improver modified its input tour")
		}
	}
}

// TestHeuristicQualityOrdering: on random instances the constructive
// heuristics must beat a random tour on average, and 2-opt must not be
// worse than its seed construction.
func TestHeuristicQualityOrdering(t *testing.T) {
	src := xrand.New(41)
	var chb, nn, rnd float64
	const trials = 15
	for i := 0; i < trials; i++ {
		pts := randomPoints(src, 35)
		chb += Length(pts, ConvexHullInsertion(pts))
		nn += Length(pts, NearestNeighbor(pts, 0))
		rnd += Length(pts, Random(35, src))
	}
	if chb >= rnd {
		t.Fatalf("convex-hull insertion (%v) not better than random (%v)", chb/trials, rnd/trials)
	}
	if nn >= rnd {
		t.Fatalf("nearest neighbour (%v) not better than random (%v)", nn/trials, rnd/trials)
	}
}

func TestConvexHullInsertionBeatsNNOnAverage(t *testing.T) {
	src := xrand.New(43)
	var chb, nn float64
	const trials = 20
	for i := 0; i < trials; i++ {
		pts := randomPoints(src, 40)
		chb += Length(pts, ConvexHullInsertion(pts))
		nn += Length(pts, NearestNeighbor(pts, 0))
	}
	// CHB (cheapest insertion) is a well-known stronger constructive
	// heuristic than plain NN on uniform instances.
	if chb > nn {
		t.Logf("note: CHB average %v vs NN %v (CHB expected ≤ NN on average)", chb/trials, nn/trials)
	}
}

func TestTourPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 3
		src := xrand.New(seed)
		pts := randomPoints(src, n)
		tr := ConvexHullInsertion(pts)
		if Validate(tr, n) != nil {
			return false
		}
		improved := TwoOpt(pts, tr)
		if Validate(improved, n) != nil {
			return false
		}
		return Length(pts, improved) <= Length(pts, tr)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPoints(t *testing.T) {
	pts := gridPoints()
	got := Points(pts, Tour{2, 0})
	if len(got) != 2 || !got[0].Eq(pts[2]) || !got[1].Eq(pts[0]) {
		t.Fatalf("Points = %v", got)
	}
}

func TestBruteForceSmall(t *testing.T) {
	// A square plus centre point: the optimum is known by inspection
	// to route the centre between two adjacent corners.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10),
	}
	opt := BruteForce(pts)
	if err := Validate(opt, 4); err != nil {
		t.Fatal(err)
	}
	if l := Length(pts, opt); math.Abs(l-40) > 1e-9 {
		t.Fatalf("square optimum = %v, want 40", l)
	}
	if tr := BruteForce(nil); len(tr) != 0 {
		t.Fatal("empty brute force")
	}
	if tr := BruteForce(pts[:2]); Validate(tr, 2) != nil {
		t.Fatal("two-point brute force")
	}
}

func TestBruteForcePanicsLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized brute force did not panic")
		}
	}()
	BruteForce(randomPoints(xrand.New(1), 11))
}

// TestHeuristicsVsOptimal bounds the constructive heuristics against
// the exhaustive optimum on small instances: CHB + 2-opt must be
// within 5% of optimal on random 8-point instances (in practice it is
// almost always exactly optimal at this size).
func TestHeuristicsVsOptimal(t *testing.T) {
	src := xrand.New(61)
	for trial := 0; trial < 10; trial++ {
		pts := randomPoints(src, 8)
		opt := Length(pts, BruteForce(pts))
		chb := Length(pts, TwoOpt(pts, ConvexHullInsertion(pts)))
		if chb < opt-1e-9 {
			t.Fatalf("trial %d: heuristic %.3f beat the optimum %.3f", trial, chb, opt)
		}
		if chb > 1.05*opt {
			t.Fatalf("trial %d: CHB+2opt %.3f exceeds optimum %.3f by >5%%", trial, chb, opt)
		}
	}
}

// TestTwoOptNoProperCrossing: at a 2-opt local optimum no two tour
// edges properly cross (uncrossing is always an improving move).
func TestTwoOptNoProperCrossing(t *testing.T) {
	src := xrand.New(67)
	for trial := 0; trial < 15; trial++ {
		pts := randomPoints(src, 25)
		tr := TwoOpt(pts, Random(25, src))
		if HasProperCrossing(pts, tr) {
			t.Fatalf("trial %d: 2-opt-optimal tour has a crossing", trial)
		}
	}
}

func TestHasProperCrossingDetects(t *testing.T) {
	// A deliberately crossed "bowtie" order on square corners.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10),
	}
	bowtie := Tour{0, 1, 3, 2} // edges (1,3) and (2,0) cross
	if !HasProperCrossing(pts, bowtie) {
		t.Fatal("bowtie crossing not detected")
	}
	square := Tour{0, 1, 2, 3}
	if HasProperCrossing(pts, square) {
		t.Fatal("convex square reported crossing")
	}
	if HasProperCrossing(pts[:3], Tour{0, 1, 2}) {
		t.Fatal("triangle reported crossing")
	}
}

// TestConvexHullInsertionNearOptimalProperty: on random small
// instances the paper's construction stays within 25% of optimal even
// without 2-opt.
func TestConvexHullInsertionNearOptimalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := xrand.New(seed)
		pts := randomPoints(src, 7)
		opt := Length(pts, BruteForce(pts))
		chb := Length(pts, ConvexHullInsertion(pts))
		return chb >= opt-1e-9 && chb <= 1.25*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
