// Package trace records structured simulation events (visits, deaths,
// recharges) for debugging, examples, and failure-injection tests. A
// Tracer fans out to the metrics recorder and keeps a bounded log that
// can be dumped or filtered afterwards.
package trace

import (
	"fmt"
	"strings"

	"tctp/internal/geom"
)

// Kind classifies a trace event.
type Kind int

// Event kinds.
const (
	Visit Kind = iota
	Death
	Recharge
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Visit:
		return "visit"
	case Death:
		return "death"
	case Recharge:
		return "recharge"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Kind   Kind
	Time   float64
	MuleID int
	// Target is the visited target for Visit events, -1 otherwise.
	Target int
	// Pos is the location for Death events.
	Pos geom.Point
}

// String formats the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case Visit:
		return fmt.Sprintf("t=%.1f mule %d visits target %d", e.Time, e.MuleID, e.Target)
	case Death:
		return fmt.Sprintf("t=%.1f mule %d dies at %v", e.Time, e.MuleID, e.Pos)
	case Recharge:
		return fmt.Sprintf("t=%.1f mule %d recharges", e.Time, e.MuleID)
	default:
		return fmt.Sprintf("t=%.1f mule %d %v", e.Time, e.MuleID, e.Kind)
	}
}

// Tracer accumulates events up to a cap (0 = unbounded). It is not
// safe for concurrent use; simulations are single-threaded.
type Tracer struct {
	events  []Event
	cap     int
	dropped int
}

// New returns a tracer that keeps at most capacity events (0 for
// unbounded).
func New(capacity int) *Tracer {
	return &Tracer{cap: capacity}
}

// add appends the event, honouring the cap.
func (t *Tracer) add(e Event) {
	if t.cap > 0 && len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// OnVisit matches mule.Config.OnVisit.
func (t *Tracer) OnVisit(muleID, target int, at float64) {
	t.add(Event{Kind: Visit, Time: at, MuleID: muleID, Target: target})
}

// OnDeath matches mule.Config.OnDeath.
func (t *Tracer) OnDeath(muleID int, at float64, pos geom.Point) {
	t.add(Event{Kind: Death, Time: at, MuleID: muleID, Target: -1, Pos: pos})
}

// OnRecharge matches mule.Config.OnRecharge.
func (t *Tracer) OnRecharge(muleID int, at float64) {
	t.add(Event{Kind: Recharge, Time: at, MuleID: muleID, Target: -1})
}

// Events returns the recorded events in order.
func (t *Tracer) Events() []Event { return t.events }

// Dropped returns how many events were discarded due to the cap.
func (t *Tracer) Dropped() int { return t.dropped }

// Len returns the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// Filter returns the events of the given kind.
func (t *Tracer) Filter(k Kind) []Event {
	var out []Event
	for _, e := range t.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the last n events (all if n <= 0 or n exceeds the log).
func (t *Tracer) Dump(n int) string {
	events := t.events
	if n > 0 && n < len(events) {
		events = events[len(events)-n:]
	}
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	if t.dropped > 0 {
		fmt.Fprintf(&sb, "(%d events dropped)\n", t.dropped)
	}
	return sb.String()
}
