package trace

import (
	"strings"
	"testing"

	"tctp/internal/geom"
)

func TestRecordAndFilter(t *testing.T) {
	tr := New(0)
	tr.OnVisit(0, 3, 10)
	tr.OnVisit(1, 4, 20)
	tr.OnDeath(0, 30, geom.Pt(1, 2))
	tr.OnRecharge(1, 40)

	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Filter(Visit); len(got) != 2 {
		t.Fatalf("visits = %d", len(got))
	}
	if got := tr.Filter(Death); len(got) != 1 || got[0].MuleID != 0 {
		t.Fatalf("deaths = %v", got)
	}
	if got := tr.Filter(Recharge); len(got) != 1 || got[0].Time != 40 {
		t.Fatalf("recharges = %v", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d", tr.Dropped())
	}
}

func TestEventsInOrder(t *testing.T) {
	tr := New(0)
	for i := 0; i < 5; i++ {
		tr.OnVisit(0, i, float64(i))
	}
	ev := tr.Events()
	for i := range ev {
		if ev[i].Target != i {
			t.Fatalf("order broken: %v", ev)
		}
	}
}

func TestCapDropsExcess(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.OnVisit(0, i, float64(i))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d", tr.Dropped())
	}
	if !strings.Contains(tr.Dump(0), "7 events dropped") {
		t.Fatal("dump does not report drops")
	}
}

func TestDump(t *testing.T) {
	tr := New(0)
	tr.OnVisit(2, 7, 1.5)
	tr.OnDeath(3, 2.5, geom.Pt(4, 5))
	out := tr.Dump(0)
	if !strings.Contains(out, "mule 2 visits target 7") {
		t.Fatalf("dump: %q", out)
	}
	if !strings.Contains(out, "mule 3 dies") {
		t.Fatalf("dump: %q", out)
	}
	// Tail limit.
	if tail := tr.Dump(1); strings.Contains(tail, "visits target") {
		t.Fatalf("Dump(1) returned more than the last event: %q", tail)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Visit, Death, Recharge, Kind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	e := Event{Kind: Kind(9), Time: 1, MuleID: 0}
	if e.String() == "" {
		t.Fatal("empty event string")
	}
}
