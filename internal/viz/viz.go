// Package viz renders scenarios and routes as ASCII maps for the CLI
// and the examples: targets, VIPs, the sink, the recharge station,
// mule start positions, and the patrolling walks' polylines. Plans
// are rendered through their group model — every patrol group's walk
// gets its own glyph, so a partitioned plan (C-TCTP, Sweep) shows its
// per-region circuits instead of a blank map.
package viz

import (
	"fmt"
	"strings"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/walk"
)

// Canvas is a character grid mapped onto a rectangular world region.
type Canvas struct {
	w, h  int
	world geom.Rect
	cells [][]rune
}

// NewCanvas creates a w×h character canvas covering the world
// rectangle. It panics on non-positive dimensions.
func NewCanvas(w, h int, world geom.Rect) *Canvas {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("viz: canvas %dx%d", w, h))
	}
	cells := make([][]rune, h)
	for i := range cells {
		cells[i] = make([]rune, w)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	return &Canvas{w: w, h: h, world: world, cells: cells}
}

// cell maps a world point to canvas coordinates.
func (c *Canvas) cell(p geom.Point) (int, int, bool) {
	if !c.world.Contains(p) {
		return 0, 0, false
	}
	fx := (p.X - c.world.Min.X) / c.world.Width()
	fy := (p.Y - c.world.Min.Y) / c.world.Height()
	x := int(fx * float64(c.w-1))
	// Row 0 is the top of the map (max Y).
	y := int((1 - fy) * float64(c.h-1))
	return x, y, true
}

// Plot draws r at the world point (later plots overwrite earlier
// ones). Points outside the world region are ignored.
func (c *Canvas) Plot(p geom.Point, r rune) {
	if x, y, ok := c.cell(p); ok {
		c.cells[y][x] = r
	}
}

// Line draws a straight segment with '.' marks, leaving endpoints for
// the caller to label.
func (c *Canvas) Line(a, b geom.Point) { c.LineGlyph(a, b, '.') }

// LineGlyph draws a straight segment with the given glyph, leaving
// endpoints for the caller to label.
func (c *Canvas) LineGlyph(a, b geom.Point, r rune) {
	steps := int(a.Dist(b)/c.worldStep()) + 1
	for s := 1; s < steps; s++ {
		t := float64(s) / float64(steps)
		x, y, ok := c.cell(a.Lerp(b, t))
		if ok && c.cells[y][x] == ' ' {
			c.cells[y][x] = r
		}
	}
}

// worldStep returns the world distance corresponding to roughly one
// cell.
func (c *Canvas) worldStep() float64 {
	sx := c.world.Width() / float64(c.w)
	sy := c.world.Height() / float64(c.h)
	if sx < sy {
		return sx
	}
	return sy
}

// String renders the canvas with a border.
func (c *Canvas) String() string {
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	for _, row := range c.cells {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", c.w) + "+\n")
	return sb.String()
}

// routeGlyphs are the per-group walk glyphs, cycling for plans with
// more groups than glyphs. Group 0 keeps the classic '.' so
// single-circuit maps render exactly as before.
var routeGlyphs = []rune{'.', ',', '~', '^', '`', '"'}

// Map renders a scenario and, optionally, a single patrolling walk
// over it. Legend: o target, V VIP, S sink, R recharge station,
// m mule start, '.' route. Prefer MapPlan for plans: it draws every
// patrol group.
func Map(s *field.Scenario, w *walk.Walk, width, height int) string {
	var walks []walk.Walk
	if w != nil {
		walks = []walk.Walk{*w}
	}
	return MapWalks(s, walks, width, height)
}

// MapPlan renders a scenario with every patrol group of the plan
// drawn in its own glyph — the group model is the source of truth, so
// partitioned plans (C-TCTP, Sweep) show one polyline per region. A
// nil plan renders the bare scenario.
func MapPlan(s *field.Scenario, plan *core.FleetPlan, width, height int) string {
	if plan == nil {
		return MapWalks(s, nil, width, height)
	}
	return MapWalks(s, plan.Walks(), width, height)
}

// MapWalks renders a scenario with the given walks, one glyph per
// walk (cycling through routeGlyphs).
func MapWalks(s *field.Scenario, walks []walk.Walk, width, height int) string {
	canvas := NewCanvas(width, height, s.Field)
	pts := s.Points()

	for wi, w := range walks {
		if len(w.Seq) < 2 {
			continue
		}
		glyph := routeGlyphs[wi%len(routeGlyphs)]
		for i := range w.Seq {
			a := pts[w.Seq[i]]
			b := pts[w.Seq[(i+1)%len(w.Seq)]]
			canvas.LineGlyph(a, b, glyph)
		}
	}
	for _, m := range s.MuleStarts {
		canvas.Plot(m, 'm')
	}
	for _, t := range s.Targets {
		r := 'o'
		if t.IsVIP() {
			r = 'V'
		}
		canvas.Plot(t.Pos, r)
	}
	canvas.Plot(s.Targets[s.SinkID].Pos, 'S')
	if s.HasRecharge {
		canvas.Plot(s.Recharge, 'R')
	}
	legend := "legend: S sink, o target, V VIP, R recharge, m mule, . route\n"
	if len(walks) > 1 {
		glyphs := make([]string, 0, len(walks))
		for wi := range walks {
			glyphs = append(glyphs, string(routeGlyphs[wi%len(routeGlyphs)]))
		}
		legend = "legend: S sink, o target, V VIP, R recharge, m mule; group routes " +
			strings.Join(glyphs, " ") + "\n"
	}
	return canvas.String() + legend
}
