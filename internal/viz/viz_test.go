package viz

import (
	"strings"
	"testing"

	"tctp/internal/core"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/walk"
	"tctp/internal/xrand"
)

func testScenario() *field.Scenario {
	s := field.Generate(field.Config{
		NumTargets:   10,
		NumMules:     2,
		Placement:    field.Uniform,
		WithRecharge: true,
	}, xrand.New(1))
	s.AssignVIPs(xrand.New(2), 1, 3)
	return s
}

func TestCanvasBasics(t *testing.T) {
	c := NewCanvas(20, 10, geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)))
	c.Plot(geom.Pt(50, 50), 'X')
	out := c.String()
	if !strings.ContainsRune(out, 'X') {
		t.Fatal("plotted rune missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // 10 rows + 2 border lines
		t.Fatalf("%d lines", len(lines))
	}
	for _, l := range lines {
		if len([]rune(l)) != 22 {
			t.Fatalf("ragged line %q", l)
		}
	}
}

func TestCanvasOrientation(t *testing.T) {
	// North (max Y) must be the top row.
	c := NewCanvas(10, 10, geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)))
	c.Plot(geom.Pt(0, 100), 'N')
	c.Plot(geom.Pt(0, 0), 'B')
	out := strings.Split(c.String(), "\n")
	if !strings.ContainsRune(out[1], 'N') {
		t.Fatal("north point not in top row")
	}
	if !strings.ContainsRune(out[10], 'B') {
		t.Fatal("south point not in bottom row")
	}
}

func TestCanvasIgnoresOutside(t *testing.T) {
	c := NewCanvas(10, 10, geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)))
	c.Plot(geom.Pt(-5, 50), 'X')
	if strings.ContainsRune(c.String(), 'X') {
		t.Fatal("out-of-world point plotted")
	}
}

func TestCanvasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size canvas accepted")
		}
	}()
	NewCanvas(0, 5, geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)))
}

func TestLineDraws(t *testing.T) {
	c := NewCanvas(40, 20, geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)))
	c.Line(geom.Pt(0, 0), geom.Pt(100, 100))
	if !strings.ContainsRune(c.String(), '.') {
		t.Fatal("line left no marks")
	}
}

func TestMapLegendAndMarkers(t *testing.T) {
	s := testScenario()
	w := walk.New([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	out := Map(s, &w, 60, 30)
	for _, marker := range []string{"S", "V", "o", "R", "m", "legend"} {
		if !strings.Contains(out, marker) {
			t.Fatalf("marker %q missing from map:\n%s", marker, out)
		}
	}
	if !strings.Contains(out, ".") {
		t.Fatal("route missing from map")
	}
}

func TestMapWithoutWalk(t *testing.T) {
	s := testScenario()
	out := Map(s, nil, 40, 20)
	if !strings.Contains(out, "S") {
		t.Fatal("sink missing")
	}
}

func TestMapPlanDrawsEveryGroupWithDistinctGlyphs(t *testing.T) {
	s := testScenario()
	// A two-group plan split down the target list.
	var left, right []int
	for i := 0; i < s.NumTargets(); i++ {
		if i < s.NumTargets()/2 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	plan := &core.FleetPlan{
		Algorithm: "test",
		Groups: []core.PatrolGroup{
			{Walk: walk.New(left), Targets: left},
			{Walk: walk.New(right), Targets: right},
		},
	}
	out := MapPlan(s, plan, 70, 30)
	// Group 0 keeps '.', group 1 gets the next glyph, and the legend
	// lists both.
	if !strings.Contains(out, ".") || !strings.Contains(out, ",") {
		t.Fatalf("multi-group map misses a group glyph:\n%s", out)
	}
	if !strings.Contains(out, "group routes . ,") {
		t.Fatalf("legend misses group glyphs:\n%s", out)
	}
}

func TestMapPlanSingleGroupMatchesClassicMap(t *testing.T) {
	s := testScenario()
	w := walk.New([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	plan := &core.FleetPlan{Groups: []core.PatrolGroup{{Walk: w}}}
	if MapPlan(s, plan, 60, 30) != Map(s, &w, 60, 30) {
		t.Fatal("single-group plan renders differently from the classic map")
	}
}

func TestMapPlanNil(t *testing.T) {
	s := testScenario()
	if MapPlan(s, nil, 40, 20) != Map(s, nil, 40, 20) {
		t.Fatal("nil plan renders differently from the bare scenario")
	}
}
