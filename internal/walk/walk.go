// Package walk represents closed walks over a target set. A Walk is a
// cyclic sequence of target indices in which an index may occur more
// than once: a plain Hamiltonian circuit is a walk where every index
// occurs exactly once, while the paper's Weighted Patrolling Path
// (WPP, Definition 3) is a walk where VIP g_i occurs w_i times. The
// sub-walks between consecutive occurrences of g_i are exactly the w_i
// "cycles intersecting at g_i" of the paper — CyclesAt recovers them.
//
// The package also implements the geometric services the planners
// need on top of a walk: total length, arc-length lookup, rotation to
// the most-north target (the anchor of B-TCTP's start-point
// partition), and the equal-length partition itself.
package walk

import (
	"fmt"
	"math"

	"tctp/internal/geom"
)

// Walk is a closed walk over target indices. The walk implicitly
// closes from the last element back to the first. The zero value is an
// empty walk.
type Walk struct {
	// Seq is the visiting order. Seq[k] is the index (into the
	// scenario's point slice) of the k-th visited target.
	Seq []int
}

// New returns a walk over the given visiting order. The slice is
// copied.
func New(seq []int) Walk {
	s := make([]int, len(seq))
	copy(s, seq)
	return Walk{Seq: s}
}

// Clone returns a deep copy of the walk.
func (w Walk) Clone() Walk { return New(w.Seq) }

// Size returns the number of hops in the closed walk (equal to the
// number of sequence entries).
func (w Walk) Size() int { return len(w.Seq) }

// Points materializes the walk as the ordered point sequence (not
// closed; the caller knows the walk wraps).
func (w Walk) Points(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(w.Seq))
	for i, idx := range w.Seq {
		out[i] = pts[idx]
	}
	return out
}

// Length returns the total length of the closed walk.
func (w Walk) Length(pts []geom.Point) float64 {
	return geom.CycleLen(w.Points(pts))
}

// Occurrences returns how many times target idx appears in the walk.
func (w Walk) Occurrences(idx int) int {
	n := 0
	for _, v := range w.Seq {
		if v == idx {
			n++
		}
	}
	return n
}

// OccurrencePositions returns the positions (in increasing order) at
// which target idx appears.
func (w Walk) OccurrencePositions(idx int) []int {
	var out []int
	for i, v := range w.Seq {
		if v == idx {
			out = append(out, i)
		}
	}
	return out
}

// CyclesAt returns the cycles of the walk that intersect at target
// idx, per Definition 3: if idx occurs k times, the walk decomposes
// into k sub-walks, each starting and ending at idx. Every returned
// slice begins and ends with idx (so a cycle of length m hops has m+1
// entries). Returns nil if idx does not occur.
func (w Walk) CyclesAt(idx int) [][]int {
	pos := w.OccurrencePositions(idx)
	if len(pos) == 0 {
		return nil
	}
	n := len(w.Seq)
	cycles := make([][]int, 0, len(pos))
	for i, p := range pos {
		var next int
		if i+1 < len(pos) {
			next = pos[i+1]
		} else {
			next = pos[0] + n // wrap around
		}
		cyc := make([]int, 0, next-p+1)
		for j := p; j <= next; j++ {
			cyc = append(cyc, w.Seq[j%n])
		}
		cycles = append(cycles, cyc)
	}
	return cycles
}

// CycleLengthsAt returns the geometric length of each cycle
// intersecting at idx, in the same order as CyclesAt. These are the
// len_i^k quantities of Definition 4 (the visiting interval of a VIP
// is cycle length divided by mule speed).
func (w Walk) CycleLengthsAt(pts []geom.Point, idx int) []float64 {
	cycles := w.CyclesAt(idx)
	out := make([]float64, len(cycles))
	for i, cyc := range cycles {
		var l float64
		for j := 1; j < len(cyc); j++ {
			l += pts[cyc[j-1]].Dist(pts[cyc[j]])
		}
		out[i] = l
	}
	return out
}

// Rotate returns the walk rotated so it begins at position pos.
func (w Walk) Rotate(pos int) Walk {
	n := len(w.Seq)
	if n == 0 {
		return w
	}
	pos = ((pos % n) + n) % n
	out := make([]int, 0, n)
	out = append(out, w.Seq[pos:]...)
	out = append(out, w.Seq[:pos]...)
	return Walk{Seq: out}
}

// RotateToNorthmost returns the walk rotated to begin at the first
// occurrence of the most-north target — the anchor of the paper's
// start-point partition ("each DM will treat the most north target
// point as the first start point", §2.2-B).
func (w Walk) RotateToNorthmost(pts []geom.Point) Walk {
	if len(w.Seq) == 0 {
		return w
	}
	wp := w.Points(pts)
	return w.Rotate(geom.Northmost(wp))
}

// closedPoints returns the walk's points with the first point
// replicated at the end, turning the cyclic walk into an explicit
// closed polyline for arc-length computations.
func (w Walk) closedPoints(pts []geom.Point) []geom.Point {
	p := w.Points(pts)
	if len(p) > 0 {
		p = append(p, p[0])
	}
	return p
}

// PointAt returns the point at arc-length d along the closed walk,
// measured from the walk's first target; d wraps modulo the walk
// length.
func (w Walk) PointAt(pts []geom.Point, d float64) geom.Point {
	closed := w.closedPoints(pts)
	if len(closed) == 0 {
		panic("walk: PointAt on empty walk")
	}
	return pointAt(closed, geom.PathLen(closed), d)
}

// PointsAt is PointAt for a batch of arc lengths: the closed polyline
// and its total length are built once and shared by every query. The
// result is bit-identical to calling PointAt per offset. It panics on
// an empty walk.
func (w Walk) PointsAt(pts []geom.Point, ds []float64) []geom.Point {
	closed := w.closedPoints(pts)
	if len(closed) == 0 {
		panic("walk: PointsAt on empty walk")
	}
	total := geom.PathLen(closed)
	out := make([]geom.Point, len(ds))
	for i, d := range ds {
		out[i] = pointAt(closed, total, d)
	}
	return out
}

// pointAt is PointAt over a prebuilt closed polyline and its length,
// letting batch callers (StartPoints) pay for closedPoints and PathLen
// once instead of per query.
func pointAt(closed []geom.Point, total, d float64) geom.Point {
	if total > 0 {
		for d < 0 {
			d += total
		}
		for d >= total {
			d -= total
		}
	} else {
		d = 0
	}
	p, _ := geom.PointAlong(closed, d)
	return p
}

// StartPoints returns n points spaced |walk|/n apart along the closed
// walk, beginning at the walk's first target. These are the paper's
// "start points": the endpoints of the n equal-length segments that
// the patrolling path is partitioned into, one per data mule.
// It panics if n <= 0 or the walk is empty.
func (w Walk) StartPoints(pts []geom.Point, n int) []geom.Point {
	if n <= 0 {
		panic(fmt.Sprintf("walk: StartPoints with n=%d", n))
	}
	if len(w.Seq) == 0 {
		panic("walk: StartPoints on empty walk")
	}
	// One closed polyline and one length computation serve all n
	// queries; Length and PathLen(closedPoints) sum the same segment
	// distances in the same order, so the offsets are unchanged.
	closed := w.closedPoints(pts)
	total := geom.PathLen(closed)
	out := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		out[i] = pointAt(closed, total, float64(i)*total/float64(n))
	}
	return out
}

// ArcOffsets returns, for each position k in the walk, the arc-length
// distance from the walk start to target Seq[k]. The final closing
// edge is not included; offsets are strictly increasing when no two
// consecutive targets coincide.
func (w Walk) ArcOffsets(pts []geom.Point) []float64 {
	out := make([]float64, len(w.Seq))
	acc := 0.0
	for i := 1; i < len(w.Seq); i++ {
		acc += pts[w.Seq[i-1]].Dist(pts[w.Seq[i]])
		out[i] = acc
	}
	return out
}

// NearestOffset returns the arc-length offset (measured from the
// walk's first target) of the point on the closed walk nearest to p.
// The CHB baseline uses it to let each mule enter the circuit at its
// closest point instead of performing location initialization. It
// panics on an empty walk.
func (w Walk) NearestOffset(pts []geom.Point, p geom.Point) float64 {
	return w.NearestOffsets(pts, []geom.Point{p})[0]
}

// NearestOffsets is NearestOffset for a batch of query points in one
// polyline pass: the closed polyline, each segment's length, and the
// running arc offset are computed once and shared by every query,
// instead of once per query as a per-mule NearestOffset loop would.
// The result is bit-identical to calling NearestOffset per point —
// each query still scans segments in walk order and keeps the first
// strictly nearer projection (ties resolve to the earlier segment). It
// panics on an empty walk.
func (w Walk) NearestOffsets(pts []geom.Point, ps []geom.Point) []float64 {
	closed := w.closedPoints(pts)
	if len(closed) == 0 {
		panic("walk: NearestOffsets on empty walk")
	}
	bestOff := make([]float64, len(ps))
	bestDist := make([]float64, len(ps))
	for i := range bestDist {
		bestDist[i] = math.Inf(1)
	}
	acc := 0.0
	for i := 1; i < len(closed); i++ {
		a, b := closed[i-1], closed[i]
		seg := geom.Segment{A: a, B: b}
		segLen := seg.Len()
		ab := b.Sub(a)
		for j, p := range ps {
			// Project p onto the segment to find the closest point
			// and its arc position.
			t := 0.0
			if segLen > 0 {
				t = p.Sub(a).Dot(ab) / (segLen * segLen)
				if t < 0 {
					t = 0
				}
				if t > 1 {
					t = 1
				}
			}
			q := a.Lerp(b, t)
			if d := p.Dist(q); d < bestDist[j] {
				bestDist[j] = d
				bestOff[j] = acc + t*segLen
			}
		}
		acc += segLen
	}
	total := acc
	for j, off := range bestOff {
		if total > 0 && off >= total {
			bestOff[j] = off - total
		}
	}
	return bestOff
}

// InsertAfter returns a new walk with target via inserted after
// position pos, replacing the edge (Seq[pos], Seq[pos+1]) by the pair
// (Seq[pos], via) and (via, Seq[pos+1]). This is the cycle-creation
// primitive of the WPP construction (§3.1: remove break edge e_y and
// connect both break points to the VIP).
func (w Walk) InsertAfter(pos, via int) Walk {
	n := len(w.Seq)
	if pos < 0 || pos >= n {
		panic(fmt.Sprintf("walk: InsertAfter position %d out of range [0,%d)", pos, n))
	}
	out := make([]int, 0, n+1)
	out = append(out, w.Seq[:pos+1]...)
	out = append(out, via)
	out = append(out, w.Seq[pos+1:]...)
	return Walk{Seq: out}
}

// EdgeCost returns the length of the walk edge starting at position
// pos (wrapping for the closing edge).
func (w Walk) EdgeCost(pts []geom.Point, pos int) float64 {
	n := len(w.Seq)
	return pts[w.Seq[pos]].Dist(pts[w.Seq[(pos+1)%n]])
}

// Validate checks the walk against per-target required occurrence
// counts: target i must occur want[i] times (targets with want[i]==0
// must be absent). Passing nil want checks that the walk is a
// Hamiltonian circuit over n targets (each occurring exactly once).
func (w Walk) Validate(n int, want []int) error {
	counts := make([]int, n)
	for i, v := range w.Seq {
		if v < 0 || v >= n {
			return fmt.Errorf("walk: index %d at position %d out of range [0,%d)", v, i, n)
		}
		counts[v]++
	}
	for i, c := range counts {
		expect := 1
		if want != nil {
			expect = want[i]
		}
		if c != expect {
			return fmt.Errorf("walk: target %d occurs %d times, want %d", i, c, expect)
		}
	}
	return nil
}

// HasConsecutiveDuplicate reports whether any walk edge is degenerate
// (two consecutive identical targets, including the wrap edge). The
// WPP construction never produces such edges; the check backs the
// property tests.
func (w Walk) HasConsecutiveDuplicate() bool {
	n := len(w.Seq)
	if n < 2 {
		return false
	}
	for i := 0; i < n; i++ {
		if w.Seq[i] == w.Seq[(i+1)%n] {
			return true
		}
	}
	return false
}
