package walk

import (
	"math"
	"testing"
	"testing/quick"

	"tctp/internal/geom"
	"tctp/internal/xrand"
)

// unitSquare returns 4 points on a 100-metre square.
func unitSquare() []geom.Point {
	return []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(0, 100),
	}
}

func TestNewCopies(t *testing.T) {
	seq := []int{0, 1, 2}
	w := New(seq)
	seq[0] = 9
	if w.Seq[0] != 0 {
		t.Fatal("New did not copy the sequence")
	}
}

func TestLength(t *testing.T) {
	pts := unitSquare()
	w := New([]int{0, 1, 2, 3})
	if l := w.Length(pts); math.Abs(l-400) > 1e-9 {
		t.Fatalf("Length = %v, want 400", l)
	}
}

func TestOccurrences(t *testing.T) {
	w := New([]int{0, 1, 0, 2, 0})
	if n := w.Occurrences(0); n != 3 {
		t.Fatalf("Occurrences(0) = %d", n)
	}
	if n := w.Occurrences(5); n != 0 {
		t.Fatalf("Occurrences(5) = %d", n)
	}
	pos := w.OccurrencePositions(0)
	want := []int{0, 2, 4}
	if len(pos) != 3 || pos[0] != want[0] || pos[1] != want[1] || pos[2] != want[2] {
		t.Fatalf("positions = %v", pos)
	}
}

// TestCyclesAtPaperExample reproduces Fig. 2 / §3.2 of the paper: walk
// (g1, g10, g9, g4, g8, g7, g6, g5, g4, g3, g2, g1-wrap) — g4 is a VIP
// with weight 2 and decomposes the walk into two cycles.
func TestCyclesAtPaperExample(t *testing.T) {
	// Indices: g1=0, g2=1, ..., g10=9.
	w := New([]int{0, 9, 8, 3, 7, 6, 5, 4, 3, 2, 1})
	cycles := w.CyclesAt(3) // g4
	if len(cycles) != 2 {
		t.Fatalf("got %d cycles, want 2", len(cycles))
	}
	// First cycle: g4 g8 g7 g6 g5 g4 (positions 3..8).
	want1 := []int{3, 7, 6, 5, 4, 3}
	if len(cycles[0]) != len(want1) {
		t.Fatalf("cycle 1 = %v", cycles[0])
	}
	for i := range want1 {
		if cycles[0][i] != want1[i] {
			t.Fatalf("cycle 1 = %v, want %v", cycles[0], want1)
		}
	}
	// Second cycle wraps: g4 g3 g2 g1 g10 g9 g4.
	want2 := []int{3, 2, 1, 0, 9, 8, 3}
	for i := range want2 {
		if cycles[1][i] != want2[i] {
			t.Fatalf("cycle 2 = %v, want %v", cycles[1], want2)
		}
	}
}

func TestCyclesAtSingleOccurrence(t *testing.T) {
	w := New([]int{0, 1, 2, 3})
	cycles := w.CyclesAt(2)
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles", len(cycles))
	}
	// The single cycle is the whole walk, starting and ending at 2.
	want := []int{2, 3, 0, 1, 2}
	for i := range want {
		if cycles[0][i] != want[i] {
			t.Fatalf("cycle = %v, want %v", cycles[0], want)
		}
	}
	if c := w.CyclesAt(7); c != nil {
		t.Fatalf("absent target returned cycles: %v", c)
	}
}

// TestCycleLengthsSumToWalkLength: the cycles at any target partition
// the walk's edges, so their lengths must sum to the walk length.
func TestCycleLengthsSumToWalkLength(t *testing.T) {
	src := xrand.New(7)
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	w := New([]int{0, 9, 8, 3, 7, 6, 5, 4, 3, 2, 1})
	total := w.Length(pts)
	for _, idx := range []int{3, 0, 5} {
		lens := w.CycleLengthsAt(pts, idx)
		sum := 0.0
		for _, l := range lens {
			sum += l
		}
		if math.Abs(sum-total) > 1e-6 {
			t.Fatalf("cycles at %d sum to %v, walk length %v", idx, sum, total)
		}
	}
}

func TestRotate(t *testing.T) {
	w := New([]int{0, 1, 2, 3})
	r := w.Rotate(2)
	want := []int{2, 3, 0, 1}
	for i := range want {
		if r.Seq[i] != want[i] {
			t.Fatalf("Rotate = %v", r.Seq)
		}
	}
	// Rotation preserves length.
	pts := unitSquare()
	if math.Abs(w.Length(pts)-r.Length(pts)) > 1e-9 {
		t.Fatal("rotation changed length")
	}
	// Negative and overflow positions wrap.
	if r2 := w.Rotate(-1); r2.Seq[0] != 3 {
		t.Fatalf("Rotate(-1) = %v", r2.Seq)
	}
	if r3 := w.Rotate(6); r3.Seq[0] != 2 {
		t.Fatalf("Rotate(6) = %v", r3.Seq)
	}
}

func TestRotateToNorthmost(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(50, 500), geom.Pt(100, 20), geom.Pt(70, 300),
	}
	w := New([]int{0, 2, 1, 3}) // northmost is target 1 at walk position 2
	r := w.RotateToNorthmost(pts)
	if r.Seq[0] != 1 {
		t.Fatalf("walk starts at %d, want northmost target 1", r.Seq[0])
	}
}

func TestPointAt(t *testing.T) {
	pts := unitSquare()
	w := New([]int{0, 1, 2, 3})
	if p := w.PointAt(pts, 0); !p.Eq(geom.Pt(0, 0)) {
		t.Fatalf("PointAt(0) = %v", p)
	}
	if p := w.PointAt(pts, 50); !p.Eq(geom.Pt(50, 0)) {
		t.Fatalf("PointAt(50) = %v", p)
	}
	if p := w.PointAt(pts, 150); !p.Eq(geom.Pt(100, 50)) {
		t.Fatalf("PointAt(150) = %v", p)
	}
	// Wraps modulo walk length.
	if p := w.PointAt(pts, 450); !p.Eq(geom.Pt(50, 0)) {
		t.Fatalf("PointAt(450) = %v", p)
	}
	if p := w.PointAt(pts, -50); !p.Eq(geom.Pt(0, 50)) {
		t.Fatalf("PointAt(-50) = %v", p)
	}
}

func TestStartPointsEquallySpaced(t *testing.T) {
	pts := unitSquare()
	w := New([]int{0, 1, 2, 3})
	sp := w.StartPoints(pts, 4)
	want := []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(100, 100), geom.Pt(0, 100),
	}
	for i := range want {
		if !sp[i].Eq(want[i]) {
			t.Fatalf("start point %d = %v, want %v", i, sp[i], want[i])
		}
	}
	sp2 := w.StartPoints(pts, 2)
	if !sp2[0].Eq(geom.Pt(0, 0)) || !sp2[1].Eq(geom.Pt(100, 100)) {
		t.Fatalf("2 start points: %v", sp2)
	}
}

// TestStartPointsArcProperty: consecutive start points are exactly
// |walk|/n apart in arc length on arbitrary random walks.
func TestStartPointsArcProperty(t *testing.T) {
	src := xrand.New(11)
	f := func(seed uint64, nMules uint8) bool {
		local := xrand.New(seed)
		nPts := 4 + local.Intn(12)
		pts := make([]geom.Point, nPts)
		for i := range pts {
			pts[i] = geom.Pt(local.Range(0, 800), local.Range(0, 800))
		}
		perm := local.Perm(nPts)
		w := New(perm)
		n := int(nMules%6) + 1
		total := w.Length(pts)
		if total == 0 {
			return true
		}
		sp := w.StartPoints(pts, n)
		if len(sp) != n {
			return false
		}
		// Verify each start point lies on the walk polyline.
		closed := append(w.Points(pts), pts[w.Seq[0]])
		for _, p := range sp {
			onWalk := false
			for i := 1; i < len(closed); i++ {
				if (geom.Segment{A: closed[i-1], B: closed[i]}).DistToPoint(p) < 1e-6 {
					onWalk = true
					break
				}
			}
			if !onWalk {
				return false
			}
		}
		return true
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStartPointsPanics(t *testing.T) {
	w := New([]int{0, 1})
	pts := unitSquare()
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("StartPoints(%d) did not panic", n)
				}
			}()
			w.StartPoints(pts, n)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("StartPoints on empty walk did not panic")
			}
		}()
		New(nil).StartPoints(pts, 2)
	}()
}

func TestArcOffsets(t *testing.T) {
	pts := unitSquare()
	w := New([]int{0, 1, 2, 3})
	off := w.ArcOffsets(pts)
	want := []float64{0, 100, 200, 300}
	for i := range want {
		if math.Abs(off[i]-want[i]) > 1e-9 {
			t.Fatalf("ArcOffsets = %v", off)
		}
	}
}

func TestInsertAfter(t *testing.T) {
	w := New([]int{0, 1, 2})
	w2 := w.InsertAfter(1, 7)
	want := []int{0, 1, 7, 2}
	if len(w2.Seq) != 4 {
		t.Fatalf("InsertAfter = %v", w2.Seq)
	}
	for i := range want {
		if w2.Seq[i] != want[i] {
			t.Fatalf("InsertAfter = %v, want %v", w2.Seq, want)
		}
	}
	// Insert across the closing edge.
	w3 := w.InsertAfter(2, 9)
	want3 := []int{0, 1, 2, 9}
	for i := range want3 {
		if w3.Seq[i] != want3[i] {
			t.Fatalf("InsertAfter(closing) = %v", w3.Seq)
		}
	}
	// Input untouched.
	if len(w.Seq) != 3 {
		t.Fatal("InsertAfter modified input")
	}
}

func TestInsertAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range InsertAfter did not panic")
		}
	}()
	New([]int{0, 1}).InsertAfter(5, 2)
}

// TestInsertAfterDetourLength: inserting via into edge (a,b) increases
// the walk length by exactly DetourCost(a, b, via).
func TestInsertAfterDetourLength(t *testing.T) {
	src := xrand.New(13)
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	w := New([]int{0, 1, 2, 3, 4, 5})
	before := w.Length(pts)
	pos, via := 2, 7
	w2 := w.InsertAfter(pos, via)
	after := w2.Length(pts)
	wantDelta := geom.DetourCost(pts[w.Seq[pos]], pts[w.Seq[pos+1]], pts[via])
	if math.Abs((after-before)-wantDelta) > 1e-9 {
		t.Fatalf("length delta %v, want %v", after-before, wantDelta)
	}
}

func TestEdgeCost(t *testing.T) {
	pts := unitSquare()
	w := New([]int{0, 1, 2, 3})
	if c := w.EdgeCost(pts, 0); math.Abs(c-100) > 1e-9 {
		t.Fatalf("EdgeCost(0) = %v", c)
	}
	if c := w.EdgeCost(pts, 3); math.Abs(c-100) > 1e-9 {
		t.Fatalf("closing EdgeCost = %v", c)
	}
}

func TestValidate(t *testing.T) {
	w := New([]int{0, 1, 2})
	if err := w.Validate(3, nil); err != nil {
		t.Fatalf("hamiltonian rejected: %v", err)
	}
	if err := w.Validate(4, nil); err == nil {
		t.Fatal("missing target accepted")
	}
	vip := New([]int{0, 1, 0, 2})
	if err := vip.Validate(3, []int{2, 1, 1}); err != nil {
		t.Fatalf("weighted walk rejected: %v", err)
	}
	if err := vip.Validate(3, nil); err == nil {
		t.Fatal("weighted walk accepted as hamiltonian")
	}
	bad := New([]int{0, 5})
	if err := bad.Validate(3, nil); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestHasConsecutiveDuplicate(t *testing.T) {
	if New([]int{0, 1, 2}).HasConsecutiveDuplicate() {
		t.Fatal("false positive")
	}
	if !New([]int{0, 1, 1, 2}).HasConsecutiveDuplicate() {
		t.Fatal("missed interior duplicate")
	}
	if !New([]int{2, 1, 0, 2}).HasConsecutiveDuplicate() {
		t.Fatal("missed wrap duplicate")
	}
	if New([]int{0}).HasConsecutiveDuplicate() {
		t.Fatal("singleton flagged")
	}
}

func TestCloneIndependent(t *testing.T) {
	w := New([]int{0, 1, 2})
	c := w.Clone()
	c.Seq[0] = 9
	if w.Seq[0] != 0 {
		t.Fatal("Clone shares backing array")
	}
}

func TestSize(t *testing.T) {
	if New([]int{1, 2, 3}).Size() != 3 {
		t.Fatal("Size wrong")
	}
	if New(nil).Size() != 0 {
		t.Fatal("empty Size wrong")
	}
}

func TestNearestOffset(t *testing.T) {
	pts := unitSquare()
	w := New([]int{0, 1, 2, 3})
	// A point outside the bottom edge projects onto it.
	if off := w.NearestOffset(pts, geom.Pt(30, -20)); math.Abs(off-30) > 1e-9 {
		t.Fatalf("NearestOffset bottom = %v, want 30", off)
	}
	// A point to the right of the right edge: arc offset 100 + y.
	if off := w.NearestOffset(pts, geom.Pt(150, 40)); math.Abs(off-140) > 1e-9 {
		t.Fatalf("NearestOffset right = %v, want 140", off)
	}
	// A point nearest the closing edge (left side, x<0).
	if off := w.NearestOffset(pts, geom.Pt(-10, 30)); math.Abs(off-370) > 1e-9 {
		t.Fatalf("NearestOffset closing = %v, want 370", off)
	}
	// Exactly on a vertex.
	if off := w.NearestOffset(pts, geom.Pt(100, 0)); math.Abs(off-100) > 1e-9 {
		t.Fatalf("NearestOffset vertex = %v, want 100", off)
	}
}

func TestNearestOffsetPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty walk did not panic")
		}
	}()
	New(nil).NearestOffset(unitSquare(), geom.Pt(0, 0))
}

// referenceNearestOffset is the retained per-query implementation the
// batched NearestOffsets replaced: scan segments in walk order, keep
// the first strictly nearer projection. The equivalence test below
// holds NearestOffsets (and so NearestOffset) to it bit for bit.
func referenceNearestOffset(w Walk, pts []geom.Point, p geom.Point) float64 {
	closed := w.closedPoints(pts)
	bestOff, bestDist := 0.0, math.Inf(1)
	acc := 0.0
	for i := 1; i < len(closed); i++ {
		a, b := closed[i-1], closed[i]
		segLen := geom.Segment{A: a, B: b}.Len()
		t := 0.0
		if segLen > 0 {
			t = p.Sub(a).Dot(b.Sub(a)) / (segLen * segLen)
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
		}
		q := a.Lerp(b, t)
		if d := p.Dist(q); d < bestDist {
			bestDist = d
			bestOff = acc + t*segLen
		}
		acc += segLen
	}
	if acc > 0 && bestOff >= acc {
		bestOff -= acc
	}
	return bestOff
}

// TestNearestOffsetsMatchesReference: the one-pass batch is bit-equal
// to the per-query scan on random walks — including tie cases, where
// the strict < comparison must keep the earliest equidistant segment.
func TestNearestOffsetsMatchesReference(t *testing.T) {
	src := xrand.New(29)
	for trial := 0; trial < 50; trial++ {
		n := 3 + src.Intn(12)
		pts := make([]geom.Point, n)
		seq := make([]int, n)
		for i := range pts {
			pts[i] = geom.Pt(src.Range(0, 500), src.Range(0, 500))
			seq[i] = i
		}
		w := New(seq)
		qs := make([]geom.Point, 6)
		for i := range qs {
			qs[i] = geom.Pt(src.Range(-100, 600), src.Range(-100, 600))
		}
		// Walk vertices are equidistant from two adjacent segments:
		// guaranteed ties.
		qs = append(qs, pts[0], pts[n/2])
		got := w.NearestOffsets(pts, qs)
		for i, q := range qs {
			if want := referenceNearestOffset(w, pts, q); got[i] != want {
				t.Fatalf("trial %d query %d: NearestOffsets = %v, reference = %v",
					trial, i, got[i], want)
			}
			if one := w.NearestOffset(pts, q); one != got[i] {
				t.Fatalf("trial %d query %d: NearestOffset = %v, batch = %v",
					trial, i, one, got[i])
			}
		}
	}
	// The exact tie: the square's center is equidistant from all four
	// edges; the first segment must win.
	sq := unitSquare()
	w := New([]int{0, 1, 2, 3})
	center := geom.Pt(50, 50)
	if got, want := w.NearestOffsets(sq, []geom.Point{center})[0],
		referenceNearestOffset(w, sq, center); got != want || got != 50 {
		t.Fatalf("center tie: batch %v, reference %v, want 50", got, want)
	}
}

// TestPointsAtMatchesPointAt: the shared-polyline batch is bit-equal to
// per-offset PointAt, including negative and wrapping offsets.
func TestPointsAtMatchesPointAt(t *testing.T) {
	pts := unitSquare()
	w := New([]int{0, 1, 2, 3})
	ds := []float64{0, 30, 100, 399.5, 400, 650, -50, -400}
	got := w.PointsAt(pts, ds)
	for i, d := range ds {
		if want := w.PointAt(pts, d); got[i] != want {
			t.Fatalf("PointsAt[%d] (d=%v) = %v, PointAt = %v", i, d, got[i], want)
		}
	}
}

// Property: the point at the returned offset is never farther from the
// query than any sampled point of the walk.
func TestNearestOffsetProperty(t *testing.T) {
	src := xrand.New(17)
	pts := make([]geom.Point, 8)
	for i := range pts {
		pts[i] = geom.Pt(src.Range(0, 800), src.Range(0, 800))
	}
	w := New([]int{0, 1, 2, 3, 4, 5, 6, 7})
	total := w.Length(pts)
	f := func(qx, qy uint16) bool {
		q := geom.Pt(float64(qx%800), float64(qy%800))
		off := w.NearestOffset(pts, q)
		best := q.Dist(w.PointAt(pts, off))
		for f := 0.0; f < 1.0; f += 0.002 {
			if q.Dist(w.PointAt(pts, f*total)) < best-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
