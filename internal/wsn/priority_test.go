package wsn

import "testing"

// TestPriorityDeliverySplit pins the per-class accounting: packets
// originating at VIP targets land in the high-priority counters,
// everything else in the low-priority ones, and the aggregate
// statistics are untouched by the split.
func TestPriorityDeliverySplit(t *testing.T) {
	s := scenario()
	s.Targets[1].Weight = 2 // node 1 is the lone VIP origin
	nw := NewPriority(s, Config{GenInterval: 10, Deadline: 25})
	if !nw.Priority() {
		t.Fatal("NewPriority overlay does not report Priority()")
	}

	nw.OnVisit(0, 1, 35) // VIP packets born 10, 20, 30
	nw.OnVisit(0, 2, 45) // normal packets born 10, 20, 30, 40
	nw.OnVisit(0, 0, 50) // deliver: hi latencies 40,30,20; lo 40,30,20,10

	if nw.DeliveredHigh() != 3 || nw.DeliveredLow() != 4 {
		t.Fatalf("split = %d hi / %d lo, want 3/4", nw.DeliveredHigh(), nw.DeliveredLow())
	}
	if nw.OnTimeHigh() != 1 || nw.OnTimeLow() != 2 {
		t.Fatalf("on-time split = %d hi / %d lo, want 1/2", nw.OnTimeHigh(), nw.OnTimeLow())
	}
	if !almost(nw.MeanLatencyHigh(), 30) {
		t.Fatalf("MeanLatencyHigh = %v, want 30", nw.MeanLatencyHigh())
	}
	if !almost(nw.MeanLatencyLow(), 25) {
		t.Fatalf("MeanLatencyLow = %v, want 25", nw.MeanLatencyLow())
	}
	if !almost(nw.MaxLatencyHigh(), 40) {
		t.Fatalf("MaxLatencyHigh = %v, want 40", nw.MaxLatencyHigh())
	}
	// The aggregate view is the union of the classes.
	if nw.Delivered() != 7 || nw.OnTime() != 3 {
		t.Fatalf("aggregate delivered=%d onTime=%d, want 7/3", nw.Delivered(), nw.OnTime())
	}
	if !almost(nw.MeanLatency(), 190.0/7) {
		t.Fatalf("MeanLatency = %v, want %v", nw.MeanLatency(), 190.0/7)
	}
}

// A plain overlay reports no split: everything counts as low priority
// and the high-priority accessors stay zero.
func TestPlainOverlayHasNoPrioritySplit(t *testing.T) {
	nw := New(scenario(), Config{GenInterval: 10, Deadline: 100})
	if nw.Priority() {
		t.Fatal("plain overlay reports Priority()")
	}
	nw.OnVisit(0, 1, 35)
	nw.OnVisit(0, 0, 50)
	if nw.DeliveredHigh() != 0 || nw.MeanLatencyHigh() != 0 {
		t.Fatalf("plain overlay tracked priority: hi=%d mean=%v",
			nw.DeliveredHigh(), nw.MeanLatencyHigh())
	}
	if nw.DeliveredLow() != 3 {
		t.Fatalf("DeliveredLow = %d, want all 3", nw.DeliveredLow())
	}
}
