// Package xrand provides a small, fully deterministic pseudo-random
// number generator used by every stochastic component in this
// repository.
//
// The generator is SplitMix64 (Steele, Lea, Flood; OOPSLA 2014). It was
// chosen over math/rand because its output for a given seed is a pure
// function of the seed with no global state, it can be "split" into
// independent streams (one per simulation replication, one per mule),
// and it is trivially portable: the experiment harness relies on every
// platform producing bit-identical scenario layouts for a given seed.
package xrand

import "math"

// Source is a deterministic PRNG. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new Source whose stream is statistically independent
// of the receiver's. Both generators remain usable. Splitting is how
// per-replication and per-entity streams are derived from a single
// experiment seed.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// SplitN returns n independent sources derived from the receiver.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits, the standard 64-bit float construction.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be faster; plain
	// modulo with rejection keeps the implementation obviously
	// correct. Rejection bounds the modulo bias to zero.
	limit := math.MaxUint64 - math.MaxUint64%uint64(n)
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % uint64(n))
		}
	}
}

// IntRange returns a uniform value in [lo, hi]. It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with non-positive rate")
	}
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher–Yates).
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Pick returns a uniformly random element index of a collection of
// size n, or -1 if n == 0.
func (s *Source) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return s.Intn(n)
}
