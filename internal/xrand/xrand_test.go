package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values", same)
	}
}

func TestKnownVector(t *testing.T) {
	// Reference value computed from the SplitMix64 definition: the
	// first output for seed 0 is the mix of 0x9E3779B97F4A7C15.
	s := New(0)
	got := s.Uint64()
	const want uint64 = 0xE220A8397B1DCDAF
	if got != want {
		t.Fatalf("SplitMix64(0) first output = %#x, want %#x", got, want)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := New(7)
	p.Uint64() // advance past the value consumed by Split
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child replays parent stream at step %d", i)
		}
	}
}

func TestSplitN(t *testing.T) {
	s := New(3)
	kids := s.SplitN(5)
	if len(kids) != 5 {
		t.Fatalf("SplitN returned %d sources", len(kids))
	}
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatalf("two children produced identical first output %#x", v)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	for n := 1; n <= 10; n++ {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	s := New(19)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	s := New(23)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestRange(t *testing.T) {
	s := New(29)
	for i := 0; i < 1000; i++ {
		v := s.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range(10,20) = %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(31)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	s := New(37)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(0.5)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("Exp(0.5) mean = %v, want ~2", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	for n := 0; n <= 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	s := New(43)
	f := func(raw uint8) bool {
		n := int(raw%64) + 1
		p := s.Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(47)
	vals := []int{3, 1, 4, 1, 5, 9, 2, 6}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.ShuffleInts(vals)
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(53)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", p)
	}
}

func TestPickEmpty(t *testing.T) {
	if got := New(1).Pick(0); got != -1 {
		t.Fatalf("Pick(0) = %d, want -1", got)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero-value Source produced repeated zeros")
	}
}
