// Package tctp reproduces "Patrolling Mechanisms for Disconnected
// Targets in Wireless Mobile Data Mules Networks" (Chang, Lin, Hsieh,
// Ho; ICPP 2011) as a Go library.
//
// The package is a facade over the implementation in internal/: it
// re-exports the scenario model, the three TCTP planners (B-TCTP,
// W-TCTP, RW-TCTP), the paper's baselines (Random, Sweep, CHB), the
// simulation runner, and the experiment registry that regenerates
// every figure of the paper's evaluation.
//
// Quickstart:
//
//	s := tctp.GenerateScenario(tctp.ScenarioConfig{NumTargets: 20, NumMules: 4}, 1)
//	res, err := tctp.Run(s, &tctp.BTCTP{}, tctp.Options{Horizon: 50_000}, 1)
//	// res.Recorder has per-target visiting intervals; for B-TCTP the
//	// steady-state SD is zero.
//
// See the runnable programs under examples/ and the experiment CLI
// under cmd/tctp-experiments.
package tctp

import (
	"context"
	"io"

	"tctp/internal/baseline"
	"tctp/internal/core"
	"tctp/internal/energy"
	"tctp/internal/experiment"
	"tctp/internal/field"
	"tctp/internal/geom"
	"tctp/internal/metrics"
	"tctp/internal/patrol"
	"tctp/internal/scenario"
	"tctp/internal/sweep"
	"tctp/internal/viz"
	"tctp/internal/walk"
	"tctp/internal/wsn"
	"tctp/internal/xrand"
)

// Scenario and workload types.
type (
	// Scenario is a problem instance: field, targets, sink, recharge
	// station, mule start positions.
	Scenario = field.Scenario
	// ScenarioConfig parameterizes GenerateScenario.
	ScenarioConfig = field.Config
	// Target is one point of interest with its weight.
	Target = field.Target
	// Point is a planar location in metres.
	Point = geom.Point
	// Walk is a closed walk over target indices (the patrolling path
	// representation; VIPs occur as often as their weight).
	Walk = walk.Walk
)

// Target placements for ScenarioConfig.Placement.
const (
	// Uniform scatters targets uniformly (the paper's §5.1 model).
	Uniform = field.Uniform
	// Clusters scatters targets over disconnected areas (the paper's
	// motivating deployment).
	Clusters = field.Clusters
	// Grid lays targets on a regular lattice (deterministic).
	Grid = field.Grid
	// Corridor confines targets to a narrow central band.
	Corridor = field.Corridor
	// Hotspot concentrates targets in one dense disc.
	Hotspot = field.Hotspot
)

// Declarative scenario layer re-exports: a JSON-round-trippable
// description of field, targets, fleet, horizon and workloads, with a
// validating builder and named presets (see internal/scenario).
type (
	// ScenarioSpec is the declarative scenario model. Materialize it
	// into a concrete Scenario, or call its Run method directly.
	ScenarioSpec = scenario.Scenario
	// ScenarioBuilder assembles a ScenarioSpec fluently.
	ScenarioBuilder = scenario.Builder
	// FleetSpec is a (possibly heterogeneous) mule fleet.
	FleetSpec = scenario.Fleet
	// MuleSpec is one fleet member (speed, battery).
	MuleSpec = scenario.Mule
	// WorkloadSpec is a named data workload layered on a run.
	WorkloadSpec = scenario.Workload
	// ScenarioResult is a finished scenario run: patrol result plus
	// the workload overlays.
	ScenarioResult = scenario.Result
)

// NewScenario starts a builder for a named declarative scenario; the
// zero configuration is the paper's §5.1 world.
func NewScenario(name string) *ScenarioBuilder { return scenario.New(name) }

// ScenarioPreset returns a named preset scenario (paper51, clustered,
// corridor, hotspot).
func ScenarioPreset(name string) (*ScenarioSpec, error) { return scenario.Preset(name) }

// ScenarioPresets lists the preset names.
func ScenarioPresets() []string { return scenario.PresetNames() }

// HomogeneousFleet builds an n-mule fleet of identical speed.
func HomogeneousFleet(n int, speed float64) FleetSpec { return scenario.Homogeneous(n, speed) }

// ParseFleet parses a "COUNTxSPEED[@BATTERY]+..." fleet spec.
func ParseFleet(spec string) (FleetSpec, error) { return scenario.ParseFleet(spec) }

// RunScenario materializes the declarative scenario from the seed and
// executes the planner on it, attaching the declared workloads and any
// extra observers.
func RunScenario(sc *ScenarioSpec, p Planner, seed uint64, obs ...Observer) (*ScenarioResult, error) {
	return sc.Run(patrol.Planned(p), seed, obs...)
}

// RunScenarioRandom is RunScenario for the online Random baseline.
func RunScenarioRandom(sc *ScenarioSpec, seed uint64, obs ...Observer) (*ScenarioResult, error) {
	return sc.Run(patrol.Online(&baseline.Random{}), seed, obs...)
}

// Planner types: the paper's contribution plus the fixed-route
// baselines.
type (
	// Planner is the common planner interface.
	Planner = core.Planner
	// FleetPlan is a planner's output: walks, start points, per-mule
	// routes.
	FleetPlan = core.FleetPlan
	// BTCTP is the Basic TCTP planner (§II).
	BTCTP = core.BTCTP
	// WTCTP is the Weighted TCTP planner (§III).
	WTCTP = core.WTCTP
	// RWTCTP is the recharge-aware planner (§IV).
	RWTCTP = core.RWTCTP
	// BreakPolicy selects W-TCTP's break-edge rule.
	BreakPolicy = core.BreakPolicy
	// PatrolGroup is one patrol region of a plan: its own walk, start
	// points, member targets, and assigned mules. Single-circuit plans
	// carry exactly one; partitioned plans one per region.
	PatrolGroup = core.PatrolGroup
	// CBTCTP is the partitioned B-TCTP planner: k per-region circuits.
	CBTCTP = core.CBTCTP
	// CWTCTP is the partitioned W-TCTP planner: k per-region WPPs.
	CWTCTP = core.CWTCTP
	// PartitionConfig parameterizes the partitioned planner family
	// (method, region count, mule-allocation policy).
	PartitionConfig = core.PartitionConfig
	// PartitionMethod selects the target partitioner (k-means or
	// angular sectors).
	PartitionMethod = core.PartitionMethod
	// AllocPolicy selects how mules are shared among regions.
	AllocPolicy = core.AllocPolicy
	// CHB is the convex-hull baseline of Wu et al. (MDM'09).
	CHB = baseline.CHB
	// Sweep is the group-patrolling baseline of Cheng et al.
	// (IPDPS'08).
	Sweep = baseline.Sweep
	// Random is the online random-destination baseline.
	Random = baseline.Random
)

// Partition methods and allocation policies for the C-planners.
const (
	// KMeansMethod partitions targets with Lloyd's algorithm.
	KMeansMethod = core.KMeansMethod
	// SectorsMethod partitions targets into angular sectors.
	SectorsMethod = core.SectorsMethod
	// AllocByLength shares mules proportionally to region tour length.
	AllocByLength = core.AllocByLength
	// AllocByCount shares mules proportionally to region target count.
	AllocByCount = core.AllocByCount
)

// W-TCTP break-edge policies.
const (
	// ShortestLength minimizes total WPP length (Exp. 1).
	ShortestLength = core.ShortestLength
	// BalancingLength balances VIP cycle lengths (Exp. 2).
	BalancingLength = core.BalancingLength
	// RandomBreak picks random break edges (ablation control).
	RandomBreak = core.RandomBreak
)

// Simulation types.
type (
	// Options configures a simulation run (speed, energy, horizon,
	// per-mule fleet overrides, observers).
	Options = patrol.Options
	// Observer receives simulation events (visits, deaths,
	// recharges); register any number in Options.Observers.
	Observer = patrol.Observer
	// ObserverFuncs adapts individual callbacks to Observer.
	ObserverFuncs = patrol.ObserverFuncs
	// FleetMember overrides one mule's speed and battery, enabling
	// heterogeneous fleets via Options.Fleet.
	FleetMember = patrol.FleetMember
	// Result is a finished run: visit log, per-mule and per-group
	// stats.
	Result = patrol.Result
	// GroupStats summarizes one patrol group of a plan-based run.
	GroupStats = patrol.GroupStats
	// Recorder is the per-target visit log with the paper's metrics
	// (visiting intervals, DCDT, SD).
	Recorder = metrics.Recorder
	// EnergyModel carries the §5.1 energy constants.
	EnergyModel = energy.Model
	// EnergyAudit is an observer logging battery deaths and recharge
	// completions.
	EnergyAudit = energy.Audit
	// DataNetwork is the sensor data-collection overlay: nodes buffer
	// readings, mules carry them, the sink receives them; it tracks
	// delivery latency against a deadline. It implements Observer —
	// register it in Options.Observers.
	DataNetwork = wsn.Network
	// DataConfig parameterizes the data workload (generation rate,
	// buffer capacity, delivery deadline).
	DataConfig = wsn.Config
)

// NewEnergyAudit returns an empty energy audit observer.
func NewEnergyAudit() *EnergyAudit { return energy.NewAudit() }

// NewDataNetwork builds a data-collection overlay for the scenario.
func NewDataNetwork(s *Scenario, cfg DataConfig) *DataNetwork {
	return wsn.New(s, cfg)
}

// DefaultEnergy returns the paper's §5.1 energy constants
// (8.267 J/m, 0.075 J/s, 200 kJ battery).
func DefaultEnergy() EnergyModel { return energy.Default() }

// RandSource is the deterministic random source used by scenario
// mutators such as Scenario.AssignVIPs and by planners with random
// components.
type RandSource = xrand.Source

// NewRandSource returns a RandSource with the given seed.
func NewRandSource(seed uint64) *RandSource { return xrand.New(seed) }

// GenerateScenario builds a deterministic random scenario from the
// configuration and seed.
func GenerateScenario(cfg ScenarioConfig, seed uint64) *Scenario {
	return field.Generate(cfg, xrand.New(seed))
}

// Run plans the scenario with the planner and simulates the fleet
// until opts.Horizon. The seed drives any algorithmic randomness.
func Run(s *Scenario, p Planner, opts Options, seed uint64) (*Result, error) {
	return patrol.Run(s, patrol.Planned(p), opts, xrand.New(seed))
}

// RunRandom simulates the online Random baseline on the scenario.
func RunRandom(s *Scenario, opts Options, seed uint64) (*Result, error) {
	return patrol.Run(s, patrol.Online(&baseline.Random{}), opts, xrand.New(seed))
}

// MapString renders the scenario (and, when a plan is given, every
// patrol group's walk — one glyph per group) as an ASCII map.
func MapString(s *Scenario, plan *FleetPlan, width, height int) string {
	return viz.MapPlan(s, plan, width, height)
}

// Experiment protocol re-exports: the registry regenerates every
// figure of the paper plus the ablations (see DESIGN.md §5).
type ExperimentParams = experiment.Params

// ExperimentNames lists the registered experiments
// (fig7, fig8, fig9, fig10, energy, a1-tour ... a5-traversal).
func ExperimentNames() []string { return experiment.Names() }

// RunExperiment executes a registered experiment and writes its
// rendered result to w.
func RunExperiment(name string, p ExperimentParams, w io.Writer) error {
	return experiment.Run(name, p, w)
}

// Sweep-engine re-exports: declarative parameter grids executed by one
// bounded worker pool with streaming aggregation (see internal/sweep).
type (
	// SweepSpec declares a parameter sweep: axes, metrics, protocol.
	SweepSpec = sweep.Spec
	// SweepPoint is one cell's parameter assignment.
	SweepPoint = sweep.Point
	// SweepVariant is one value of the algorithm axis.
	SweepVariant = sweep.Variant
	// SweepMetric is a named scalar extracted per replication.
	SweepMetric = sweep.Metric
	// SweepEnv is the per-replication context a metric function sees.
	SweepEnv = sweep.Env
	// SweepResult is a finished sweep: per-cell streaming aggregates.
	SweepResult = sweep.Result
	// SweepSink receives results as cells finish (CSV, JSONL, table).
	SweepSink = sweep.Sink
	// SweepAdaptive configures per-cell early stopping on a CI95
	// target.
	SweepAdaptive = sweep.Adaptive
	// SweepPartition is one value of the target-partition axis
	// (partitioner × k × allocation policy).
	SweepPartition = sweep.Partition
	// SweepJob is a planned sweep or one shard of it; Run it with
	// SweepRunOpts, or split it with Shard for distributed execution.
	SweepJob = sweep.Job
	// SweepRunOpts configures one SweepJob.Run (checkpoint path,
	// resume, sinks, progress).
	SweepRunOpts = sweep.RunOpts
	// SweepPartial is one shard's output: per-cell fold records that
	// MergeSweep fuses losslessly.
	SweepPartial = sweep.Partial
)

// SweepAlgo wraps a fixed algorithm as a variant of the algorithm
// axis.
func SweepAlgo(name string, p Planner) SweepVariant {
	return sweep.Algo(name, patrol.Planned(p))
}

// RunSweep executes the spec, streaming finished cells to the sinks in
// declaration order; output is bit-identical for any worker count.
func RunSweep(ctx context.Context, spec SweepSpec, sinks ...SweepSink) (*SweepResult, error) {
	return sweep.Run(ctx, spec, sinks...)
}

// RunSweepCheckpointed executes the spec like RunSweep while
// persisting per-cell fold state to the JSONL file at path after every
// completed replication.
func RunSweepCheckpointed(ctx context.Context, spec SweepSpec, path string, sinks ...SweepSink) (*SweepResult, error) {
	return sweep.RunCheckpointed(ctx, spec, path, sinks...)
}

// ResumeSweep continues an interrupted checkpointed sweep, skipping
// completed replications; the final sink output is byte-identical to
// an uninterrupted run.
func ResumeSweep(ctx context.Context, spec SweepSpec, path string, sinks ...SweepSink) (*SweepResult, error) {
	return sweep.Resume(ctx, spec, path, sinks...)
}

// PlanSweep validates the spec and enumerates its cells into an
// immutable job with a sha256 plan fingerprint. Job.Shard(i, n) splits
// the plan into contiguous deterministic cell ranges for distributed
// runs; Job.Run executes one job (or shard) with per-run options.
func PlanSweep(spec SweepSpec) (*SweepJob, error) { return sweep.Plan(spec) }

// MergeSweep fuses shard partials into the full sweep result,
// streaming cells to the sinks; the merged output is byte-identical to
// an unsharded RunSweep, and partials from a different spec
// (mismatched fingerprint) are refused.
func MergeSweep(spec SweepSpec, partials []*SweepPartial, sinks ...SweepSink) (*SweepResult, error) {
	return sweep.Merge(spec, partials, sinks...)
}

// LoadSweepPartial reads a shard's checkpoint file into a mergeable
// partial — the file a shard's Job.Run writes when SweepRunOpts names
// a checkpoint path.
func LoadSweepPartial(path string) (*SweepPartial, error) { return sweep.LoadPartial(path) }

// SweepCSV, SweepJSONL and SweepTable are the built-in sinks.
func SweepCSV(w io.Writer) SweepSink   { return sweep.CSV(w) }
func SweepJSONL(w io.Writer) SweepSink { return sweep.JSONL(w) }
func SweepTable(w io.Writer) SweepSink { return sweep.TextTable(w) }
