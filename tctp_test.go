package tctp

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	s := GenerateScenario(ScenarioConfig{NumTargets: 12, NumMules: 3}, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, &BTCTP{}, Options{Horizon: 40_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalVisits() == 0 {
		t.Fatal("no visits")
	}
	if sd := res.Recorder.AvgSDAfter(res.PatrolStart + 1); sd > 1e-6 {
		t.Fatalf("B-TCTP steady SD = %v through the facade", sd)
	}
}

func TestFacadeWeightedAndRecharge(t *testing.T) {
	s := GenerateScenario(ScenarioConfig{
		NumTargets: 12, NumMules: 2, WithRecharge: true,
	}, 2)
	// W-TCTP through the facade.
	wres, err := Run(s, &WTCTP{Policy: BalancingLength}, Options{Horizon: 40_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Plan == nil || wres.Plan.Groups[0].Walk.Size() == 0 {
		t.Fatal("missing plan")
	}
	// RW-TCTP through the facade.
	rw := &RWTCTP{}
	rw.Model = DefaultEnergy()
	rres, err := Run(s, rw, Options{
		Horizon: 80_000, UseBattery: true, Energy: DefaultEnergy(),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rres.DeadMules() != 0 {
		t.Fatal("RW-TCTP mule died")
	}
}

func TestFacadeRandom(t *testing.T) {
	s := GenerateScenario(ScenarioConfig{NumTargets: 10, NumMules: 2}, 3)
	res, err := RunRandom(s, Options{Horizon: 40_000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalVisits() == 0 {
		t.Fatal("no visits")
	}
}

func TestFacadeMap(t *testing.T) {
	s := GenerateScenario(ScenarioConfig{NumTargets: 10, NumMules: 2}, 4)
	res, err := Run(s, &BTCTP{}, Options{Horizon: 10_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := MapString(s, res.Plan, 60, 25)
	if !strings.Contains(m, "legend") || !strings.Contains(m, "S") {
		t.Fatalf("map malformed:\n%s", m)
	}
	if !strings.Contains(MapString(s, nil, 40, 20), "legend") {
		t.Fatal("plan-less map malformed")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	names := ExperimentNames()
	want := map[string]bool{
		"fig7": false, "fig8": false, "fig9": false, "fig10": false,
		"energy":  false,
		"a1-tour": false, "a2-break": false, "a3-init": false,
		"a4-dwell": false, "a5-traversal": false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("experiment %q not registered", n)
		}
	}
	var buf bytes.Buffer
	if err := RunExperiment("a3-init", ExperimentParams{Seeds: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("experiment produced no output")
	}
}

func TestFacadeSweep(t *testing.T) {
	spec := SweepSpec{
		Name:       "facade",
		Algorithms: []SweepVariant{SweepAlgo("btctp", &BTCTP{})},
		Targets:    []int{6},
		Mules:      []int{2},
		Horizons:   []float64{5_000},
		Metrics: []SweepMetric{{Name: "sd", Fn: func(e SweepEnv) float64 {
			return e.Result.Recorder.AvgSDAfter(e.Warm())
		}}},
		Seeds: 2,
	}
	var buf bytes.Buffer
	res, err := RunSweep(context.Background(), spec, SweepCSV(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Runs != 2 {
		t.Fatalf("cells=%d runs=%d", len(res.Cells), res.Runs)
	}
	if sd := res.Cells[0].Metric("sd"); sd.Mean > 1e-9 {
		t.Fatalf("B-TCTP steady SD %v", sd.Mean)
	}
	if !strings.Contains(buf.String(), "btctp,6,2,") {
		t.Fatalf("CSV sink output:\n%s", buf.String())
	}
}

func TestFacadeSweepJob(t *testing.T) {
	spec := SweepSpec{
		Name:       "facade-job",
		Algorithms: []SweepVariant{SweepAlgo("btctp", &BTCTP{})},
		Targets:    []int{6, 8},
		Mules:      []int{2},
		Horizons:   []float64{4_000},
		Metrics: []SweepMetric{{Name: "dcdt", Fn: func(e SweepEnv) float64 {
			return e.Result.Recorder.AvgDCDTAfter(e.Warm())
		}}},
		Seeds: 2,
	}
	var whole bytes.Buffer
	if _, err := RunSweep(context.Background(), spec, SweepCSV(&whole)); err != nil {
		t.Fatal(err)
	}

	job, err := PlanSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.Cells() != 2 || job.Fingerprint() == "" {
		t.Fatalf("planned %d cells, fp %q", job.Cells(), job.Fingerprint())
	}
	partials := make([]*SweepPartial, 2)
	for i := range partials {
		shard, err := job.Shard(i, 2)
		if err != nil {
			t.Fatal(err)
		}
		if partials[i], err = shard.Run(context.Background(), SweepRunOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	var merged bytes.Buffer
	res, err := MergeSweep(spec, partials, SweepCSV(&merged))
	if err != nil {
		t.Fatal(err)
	}
	if merged.String() != whole.String() {
		t.Fatalf("merged facade output diverged:\n%s\nvs\n%s", merged.String(), whole.String())
	}
	if res.Runs != 4 {
		t.Fatalf("merged Runs = %d", res.Runs)
	}
}
